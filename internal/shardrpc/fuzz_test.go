package shardrpc

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
	"bellflower/internal/trace"
)

// fuzzRepo builds a random repository from a seeded rng: names drawn from
// a small pool so vocabularies overlap and candidate sets are non-trivial.
func fuzzRepo(rng *rand.Rand, maxTrees int) *schema.Repository {
	pool := []string{
		"book", "title", "author", "name", "email", "address", "price",
		"order", "item", "dose", "chart", "ward", "patient", "isbn",
	}
	types := []string{"", "string", "integer", "date"}
	repo := schema.NewRepository()
	for i := 0; i < maxTrees; i++ {
		b := schema.NewBuilder("t")
		nodes := []*schema.Node{b.Root(pool[rng.Intn(len(pool))])}
		extra := rng.Intn(12)
		for j := 0; j < extra; j++ {
			parent := nodes[rng.Intn(len(nodes))]
			name, typ := pool[rng.Intn(len(pool))], types[rng.Intn(len(types))]
			if rng.Intn(5) == 0 {
				b.TypedAttribute(parent, name, typ)
			} else {
				nodes = append(nodes, b.TypedElement(parent, name, typ))
			}
		}
		repo.MustAdd(b.MustTree())
	}
	return repo
}

func fuzzPersonal(rng *rand.Rand, repo *schema.Repository, extra int) *schema.Tree {
	nodes := repo.Nodes()
	name := func() string { return nodes[rng.Intn(len(nodes))].Name }
	b := schema.NewBuilder("personal")
	parents := []*schema.Node{b.Root(name())}
	for i := 0; i < extra; i++ {
		parents = append(parents, b.Element(parents[rng.Intn(len(parents))], name()))
	}
	return b.MustTree()
}

// jsonTrip round-trips v through encoding/json into out (a pointer) — the
// fuzz target exercises the REAL wire, not just the struct translation.
func jsonTrip(t *testing.T, v any, out any) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
}

// FuzzShardWire asserts decode(encode(x)) == x over the whole shard wire
// vocabulary — descriptors, personal trees, options, projected candidate
// sets, translated clusters and reports — for arbitrary seeded
// repositories, personal schemas, shard counts and clustering variants.
// Node references must come back as the SAME node objects (pointer
// identity): that is what makes a decoded remote report merge exactly
// like an in-process one.
func FuzzShardWire(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2), uint8(3), uint8(1), false)
	f.Add(int64(2), uint8(12), uint8(4), uint8(2), uint8(2), true)
	f.Add(int64(3), uint8(3), uint8(0), uint8(1), uint8(0), false)
	f.Add(int64(4), uint8(15), uint8(3), uint8(5), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, numTrees, extraNodes, shardCount, variant uint8, clustered bool) {
		rng := rand.New(rand.NewSource(seed))
		repo := fuzzRepo(rng, int(numTrees)%16+1)
		if repo.Len() == 0 {
			return
		}
		personal := fuzzPersonal(rng, repo, int(extraNodes)%6)
		strategy := serve.PartitionBalanced
		if clustered {
			strategy = serve.PartitionClustered
		}
		n := int(shardCount)%8 + 1
		ix := labeling.NewIndex(repo)
		views := serve.PartitionRepositoryViews(ix, n, strategy)

		// Descriptor: survives JSON and stays Equal.
		for i, v := range views {
			d := ViewDescriptor(v, i, len(views), strategy)
			var d2 Descriptor
			jsonTrip(t, d, &d2)
			if !d.Equal(d2) {
				t.Fatalf("descriptor drifted over JSON: %s vs %s", d, d2)
			}
		}

		// Personal tree.
		var wt WireTree
		jsonTrip(t, EncodeTree(personal), &wt)
		decodedPersonal, err := DecodeTree(wt)
		if err != nil {
			t.Fatalf("tree decode: %v", err)
		}
		if decodedPersonal.String() != personal.String() {
			t.Fatalf("tree drifted: %q vs %q", decodedPersonal, personal)
		}
		for i, nOrig := range personal.Nodes() {
			nGot := decodedPersonal.NodeAt(i)
			if nGot.Name != nOrig.Name || nGot.Kind != nOrig.Kind || nGot.Type != nOrig.Type {
				t.Fatalf("tree node %d drifted: %+v vs %+v", i, nGot, nOrig)
			}
		}

		// Options (the fuzz inputs select a variant; signature must hold).
		opts := pipeline.DefaultOptions()
		opts.Variant = pipeline.Variant(int(variant) % 4)
		opts.MinSim = 0.3
		opts.TopN = int(extraNodes) % 5
		if clustered {
			opts.Matcher = matcher.NameMatcher{TokenAware: true}
		}
		wo, err := EncodeOptions(opts)
		if err != nil {
			t.Fatalf("options encode: %v", err)
		}
		var wo2 WireOptions
		jsonTrip(t, wo, &wo2)
		decodedOpts, err := DecodeOptions(wo2)
		if err != nil {
			t.Fatalf("options decode: %v", err)
		}
		if !reflect.DeepEqual(decodedOpts, opts) {
			t.Fatalf("options drifted:\n%+v\nvs\n%+v", decodedOpts, opts)
		}
		if serve.Signature(personal, opts) != serve.Signature(decodedPersonal, decodedOpts) {
			t.Fatal("request signature drifted across the codec")
		}

		// Candidates + clusters per view (the pre-pass payload).
		cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: opts.MinSim})
		clusters, _, err := pipeline.ComputeClusters(ix, cands, opts)
		if err != nil {
			t.Fatalf("clusters: %v", err)
		}
		for _, v := range views {
			restricted := cands.Restrict(v.Contains)
			ws, err := EncodeCandidates(v, restricted)
			if err != nil {
				t.Fatalf("candidates encode: %v", err)
			}
			var ws2 []WireCandidateSet
			jsonTrip(t, ws, &ws2)
			got, err := DecodeCandidates(v, personal, ws2)
			if err != nil {
				t.Fatalf("candidates decode: %v", err)
			}
			for i := range restricted.Sets {
				a, b := restricted.Sets[i].Elems, got.Sets[i].Elems
				if len(a) != len(b) {
					t.Fatalf("set %d: %d elems, want %d", i, len(b), len(a))
				}
				for j := range a {
					if a[j].Node != b[j].Node || a[j].Sim != b[j].Sim {
						t.Fatalf("set %d elem %d: node/sim drifted", i, j)
					}
				}
			}

			var mine []*cluster.Cluster
			for _, cl := range clusters {
				if cl.Len() > 0 && v.ContainsTree(cl.Elements[0].Node.Tree()) {
					mine = append(mine, cl)
				}
			}
			wcs, err := EncodeClusters(v, mine)
			if err != nil {
				t.Fatalf("clusters encode: %v", err)
			}
			var wcs2 []WireCluster
			jsonTrip(t, wcs, &wcs2)
			gotCls, err := DecodeClusters(v, wcs2)
			if err != nil {
				t.Fatalf("clusters decode: %v", err)
			}
			if len(gotCls) != len(mine) {
				t.Fatalf("%d clusters, want %d", len(gotCls), len(mine))
			}
			for i, cl := range mine {
				g := gotCls[i]
				if g.ID != cl.ID || g.TreeID != cl.TreeID || g.Medoid != cl.Medoid || len(g.Elements) != len(cl.Elements) {
					t.Fatalf("cluster %d header drifted", i)
				}
				for j := range cl.Elements {
					if g.Elements[j] != cl.Elements[j] {
						t.Fatalf("cluster %d element %d drifted", i, j)
					}
				}
			}
		}

		// Report round trip on the first view.
		v := views[0]
		rep, err := pipeline.NewViewRunner(v).Run(personal, opts)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		wr, err := EncodeReport(v, rep)
		if err != nil {
			t.Fatalf("report encode: %v", err)
		}
		var wr2 WireReport
		jsonTrip(t, wr, &wr2)
		got, err := DecodeReport(v, wr2)
		if err != nil {
			t.Fatalf("report decode: %v", err)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Fatalf("report drifted over the wire:\n%+v\nvs\n%+v", got, rep)
		}

		// Binary codec equivalence: a full MatchRequest/MatchResponse must
		// survive the binary transport with exact identity, and decode to
		// the same JSON meaning as the JSON transport — that is what lets a
		// mixed fleet serve byte-identical reports regardless of codec.
		{
			wsV, err := EncodeCandidates(v, cands.Restrict(v.Contains))
			if err != nil {
				t.Fatalf("candidates encode: %v", err)
			}
			var mine []*cluster.Cluster
			for _, cl := range clusters {
				if cl.Len() > 0 && v.ContainsTree(cl.Elements[0].Node.Tree()) {
					mine = append(mine, cl)
				}
			}
			wcsV, err := EncodeClusters(v, mine)
			if err != nil {
				t.Fatalf("clusters encode: %v", err)
			}
			breq := &MatchRequest{
				Descriptor:    ViewDescriptor(v, 0, len(views), strategy),
				Personal:      EncodeTree(personal),
				Signature:     serve.Signature(personal, opts),
				Options:       wo,
				HasCandidates: true,
				Candidates:    wsV,
				HasClusters:   true,
				Clusters:      wcsV,
				Iterations:    rep.Iterations,
			}
			breq.ProjectionHash = ProjectionDigest(breq)

			bdec, err := DecodeBinaryMatchRequest(EncodeBinaryMatchRequest(breq))
			if err != nil {
				t.Fatalf("binary request decode: %v", err)
			}
			if !reflect.DeepEqual(bdec, breq) {
				t.Fatalf("binary request round trip drifted:\n%+v\nvs\n%+v", bdec, breq)
			}
			var jdec MatchRequest
			jsonTrip(t, breq, &jdec)
			jb, _ := json.Marshal(jdec)
			bb, _ := json.Marshal(bdec)
			if string(jb) != string(bb) {
				t.Fatalf("binary- and JSON-decoded requests disagree:\n%s\nvs\n%s", bb, jb)
			}
			// The content address must survive BOTH transports: the shard
			// recomputes it over whatever codec the request arrived in.
			if d := ProjectionDigest(bdec); d != breq.ProjectionHash {
				t.Fatalf("projection digest drifted over binary: %q vs %q", d, breq.ProjectionHash)
			}
			if d := ProjectionDigest(&jdec); d != breq.ProjectionHash {
				t.Fatalf("projection digest drifted over JSON: %q vs %q", d, breq.ProjectionHash)
			}

			bresp := &MatchResponse{Report: wr}
			brdec, err := DecodeBinaryMatchResponse(EncodeBinaryMatchResponse(bresp))
			if err != nil {
				t.Fatalf("binary response decode: %v", err)
			}
			if !reflect.DeepEqual(brdec, bresp) {
				t.Fatalf("binary response round trip drifted")
			}
			gotB, err := DecodeReport(v, brdec.Report)
			if err != nil {
				t.Fatalf("report decode after binary: %v", err)
			}
			if !reflect.DeepEqual(gotB, rep) {
				t.Fatalf("report drifted over the binary wire:\n%+v\nvs\n%+v", gotB, rep)
			}
		}

		// Trace wire vocabulary: the X-Bellflower-Trace header and the span
		// codec must round-trip exactly — that is what makes a distributed
		// request stitch into one tree.
		tctx, ftr, froot := trace.New(context.Background(), "fuzz.trace")
		hv := trace.HeaderValue(tctx)
		tid, hparent, err := trace.ParseHeader(hv)
		if err != nil {
			t.Fatalf("header %q failed to parse: %v", hv, err)
		}
		if tid != ftr.ID() || hparent != froot.ID {
			t.Fatalf("header drifted: %q decoded to (%s,%s), want (%s,%s)",
				hv, tid, hparent, ftr.ID(), froot.ID)
		}
		sctx, str, sroot := trace.Resume(context.Background(), hv, "shard.serve")
		if str.ID() != ftr.ID() {
			t.Fatalf("resumed trace id %s, want the sender's %s", str.ID(), ftr.ID())
		}
		if sroot.Parent != froot.ID {
			t.Fatalf("resumed root parented to %s, want the sender's span %s", sroot.Parent, froot.ID)
		}
		for i := 0; i < int(extraNodes)%5+1; i++ {
			_, sp := trace.StartSpan(sctx, fmt.Sprintf("stage.%d", i))
			sp.SetAttrInt("i", int64(i))
			if rng.Intn(2) == 0 {
				sp.SetAttr("seed", fmt.Sprint(seed))
			}
			sp.End()
		}
		sroot.End()
		spans := str.Spans()
		var wspans []WireSpan
		jsonTrip(t, EncodeSpans(spans), &wspans)
		decodedSpans, err := DecodeSpans(wspans)
		if err != nil {
			t.Fatalf("span decode: %v", err)
		}
		if len(decodedSpans) != len(spans) {
			t.Fatalf("%d spans after round trip, want %d", len(decodedSpans), len(spans))
		}
		for i, orig := range spans {
			dec := decodedSpans[i]
			if dec.ID != orig.ID || dec.Parent != orig.Parent || dec.Name != orig.Name {
				t.Fatalf("span %d identity drifted: %+v vs %+v", i, dec, orig)
			}
			if dec.Start.UnixNano() != orig.Start.UnixNano() || dec.Duration != orig.Duration {
				t.Fatalf("span %d timing drifted", i)
			}
			if !reflect.DeepEqual(dec.Attrs, orig.Attrs) {
				t.Fatalf("span %d attrs drifted: %v vs %v", i, dec.Attrs, orig.Attrs)
			}
		}
		// A resume from garbage must degrade to a fresh trace, never fail.
		_, gtr, groot := trace.Resume(context.Background(), fmt.Sprintf("%x", seed), "shard.serve")
		if gtr == nil || groot.Parent != 0 {
			t.Fatal("malformed header did not degrade to a fresh root trace")
		}
		groot.End()
	})
}
