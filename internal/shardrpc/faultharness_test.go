package shardrpc_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bellflower"
	"bellflower/internal/labeling"
	"bellflower/internal/serve"
	"bellflower/internal/shardrpc"
	"bellflower/internal/shardrpc/faultproxy"
)

// proxied fronts one fleet address with a fault-injection proxy and
// returns the proxy plus its public URL.
func proxied(t testing.TB, upstream string) (*faultproxy.Proxy, string) {
	t.Helper()
	p, err := faultproxy.New(upstream)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv.URL
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// shardReplica returns shard i's replica-health snapshots from a backend
// snapshot.
func shardReplicas(b *bellflower.ShardedService, shard int) []serve.ReplicaHealth {
	_, shards := b.Snapshot()
	return shards[shard].Replicas
}

// TestHealthFlappingShard drives a shard down and back up through the
// fault proxy and pins the whole control-plane contract: consecutive
// failures mark the shard unhealthy; while it is down, partial-mode
// requests are served Incomplete WITHOUT sending the dead shard anything
// (the proxy's match counter is the witness — no request, no per-request
// timeout); a "recovered" endpoint that answers with the WRONG shard is
// NOT re-admitted (probes re-verify the descriptor); and once the real
// shard returns, probes re-admit it and requests are complete again.
func TestHealthFlappingShard(t *testing.T) {
	const nodes, seed, shards = 350, 51, 2
	fleet := startFleet(t, nodes, seed, shards, bellflower.PartitionClustered)
	proxy, proxyURL := proxied(t, fleet.addrs[1])

	routerRepo := freshRepo(t, nodes, seed)
	rng := rand.New(rand.NewSource(seed))
	personal := randomPersonal(rng, routerRepo, 2)
	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.MinSim = 0.4
	opts.Threshold = 0.6

	backend, err := bellflower.NewDistributedService(routerRepo,
		[]string{fleet.addrs[0], proxyURL},
		bellflower.ServiceConfig{
			Workers:        2,
			PartialResults: true,
			HealthInterval: 15 * time.Millisecond,
			HealthFailures: 2,
			DefaultTimeout: 5 * time.Second,
		}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()

	// Healthy baseline: complete report through the proxy.
	rep, err := backend.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatal("healthy baseline marked incomplete")
	}
	if rh := shardReplicas(backend, 1); len(rh) != 1 || !rh[0].Healthy {
		t.Fatalf("baseline replica health = %+v, want 1 healthy replica", rh)
	}

	// Down: the background probes must mark the shard unhealthy after the
	// failure threshold, with no traffic needed.
	proxy.SetDown(true)
	waitFor(t, 10*time.Second, "shard 1 marked unhealthy", func() bool {
		rh := shardReplicas(backend, 1)
		return len(rh) == 1 && !rh[0].Healthy
	})
	if rh := shardReplicas(backend, 1); rh[0].Transitions < 1 || rh[0].LastError == "" {
		t.Fatalf("unhealthy snapshot carries no evidence: %+v", rh[0])
	}

	// While down: requests are Incomplete, fast, and the dead shard sees
	// ZERO match requests — the skip costs nothing, in particular not the
	// 5s per-request timeout.
	matchBase := proxy.MatchRequests()
	for i := 0; i < 3; i++ {
		o := opts
		o.TopN = 5 + i // fresh request shapes, not one cached answer
		start := time.Now()
		rep, err := backend.Match(context.Background(), personal, o)
		if err != nil {
			t.Fatalf("request %d with unhealthy shard failed outright: %v", i, err)
		}
		if took := time.Since(start); took > 2*time.Second {
			t.Fatalf("request %d took %v with the dead shard skipped; skip must not pay a timeout", i, took)
		}
		if !rep.Incomplete || len(rep.ShardErrors) != 1 || rep.ShardErrors[0].Shard != 1 {
			t.Fatalf("request %d: incomplete=%v errors=%+v, want shard 1 skipped", i, rep.Incomplete, rep.ShardErrors)
		}
		if !strings.Contains(rep.ShardErrors[0].Err, "unhealthy") {
			t.Fatalf("request %d skip error %q does not say unhealthy", i, rep.ShardErrors[0].Err)
		}
	}
	if got := proxy.MatchRequests(); got != matchBase {
		t.Fatalf("dead shard received %d match requests while unhealthy, want 0", got-matchBase)
	}
	if st := backend.Stats(); st.HealthSkips < 3 {
		t.Fatalf("HealthSkips = %d, want >= 3", st.HealthSkips)
	}

	// "Recovery" onto the WRONG shard: the endpoint answers again, but as
	// shard 0. Probes succeed at the transport level yet the descriptor
	// re-verification must refuse re-admission.
	proxy.SetDown(false)
	if err := proxy.SetUpstream(fleet.addrs[0]); err != nil {
		t.Fatal(err)
	}
	probeBase := shardReplicas(backend, 1)[0].Probes
	waitFor(t, 10*time.Second, "3 probes against the wrong-shard upstream", func() bool {
		return shardReplicas(backend, 1)[0].Probes >= probeBase+3
	})
	rh := shardReplicas(backend, 1)[0]
	if rh.Healthy {
		t.Fatal("re-admitted a replica that hosts the wrong shard; recovery must be gated on descriptor re-verification")
	}
	if !strings.Contains(rh.LastError, "descriptor mismatch") {
		t.Fatalf("wrong-shard probe error = %q, want a descriptor mismatch", rh.LastError)
	}

	// Real recovery: back to the right shard, probes re-admit, requests
	// are complete again and traffic flows through the proxy once more.
	if err := proxy.SetUpstream(fleet.addrs[1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "shard 1 re-admitted", func() bool {
		return shardReplicas(backend, 1)[0].Healthy
	})
	o := opts
	o.TopN = 17
	rep, err = backend.Match(context.Background(), personal, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatalf("request after re-admission still incomplete: %+v", rep.ShardErrors)
	}
	if proxy.MatchRequests() == matchBase {
		t.Fatal("re-admitted shard received no match traffic")
	}
}

// TestDistributedEquivalenceReplicated extends the equivalence harness to
// replica groups: 2 shards × 2 replicas, strict routing. Killing one
// replica of EVERY shard must leave each report complete (never
// Incomplete) and byte-identical to the unsharded run — the mid-request
// failover to the surviving replica is invisible to the caller except in
// the failover counters.
func TestDistributedEquivalenceReplicated(t *testing.T) {
	const nodes, seed, shards = 350, 61, 2
	// Two independent fleets = two replicas of every shard, each replica a
	// separate host with its own repository copy, like real processes.
	fleetA := startFleet(t, nodes, seed, shards, bellflower.PartitionClustered)
	fleetB := startFleet(t, nodes, seed, shards, bellflower.PartitionClustered)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		addrs[i] = fleetA.addrs[i] + "|" + fleetB.addrs[i]
	}

	routerRepo := freshRepo(t, nodes, seed)
	rng := rand.New(rand.NewSource(seed * 7919))
	personal := randomPersonal(rng, routerRepo, 2)
	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantMedium
	opts.MinSim = 0.4
	opts.Threshold = 0.6

	direct, err := bellflower.NewMatcher(freshRepo(t, nodes, seed)).Match(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalReport(direct)

	// Strict routing, background probing off: replica state moves only on
	// live-traffic transport errors, so the dead replica keeps being
	// offered and the mid-request failover path is exercised
	// deterministically.
	backend, err := bellflower.NewDistributedService(routerRepo, addrs,
		bellflower.ServiceConfig{Workers: 2, HealthInterval: -1}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()

	rep, err := backend.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatal("healthy replicated fan-out marked incomplete")
	}
	if got := canonicalReport(rep); got != want {
		t.Fatalf("replicated report differs from unsharded\n--- unsharded\n%s\n--- replicated\n%s", want, got)
	}

	// Kill replica A of EVERY shard.
	fleetA.stop()

	// The router holds no report cache, so each repeat fans out again; the
	// round-robin cursor guarantees the dead replica is offered first on
	// some of them, forcing the mid-request failover path.
	for i := 0; i < 4; i++ {
		rep, err := backend.Match(context.Background(), personal, opts)
		if err != nil {
			t.Fatalf("request %d after replica death failed: %v (failover must rescue it)", i, err)
		}
		if rep.Incomplete || len(rep.ShardErrors) != 0 {
			t.Fatalf("request %d after replica death incomplete: %+v — one dead replica must not degrade the report", i, rep.ShardErrors)
		}
		if got := canonicalReport(rep); got != want {
			t.Fatalf("request %d after replica death differs from unsharded\n--- unsharded\n%s\n--- got\n%s", i, want, got)
		}
	}
	total, perShard := backend.Snapshot()
	if total.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1 after killing a replica per shard", total.Failovers)
	}
	for i, st := range perShard {
		if len(st.Replicas) != 2 {
			t.Fatalf("shard %d reports %d replica snapshots, want 2", i, len(st.Replicas))
		}
	}
}

// TestReplicaFailoverPrefersOtherReplica pins the satellite fix: a
// transport error no longer burns its one retry on the same endpoint —
// with a second replica available, the failover attempt goes THERE.
// A single-replica group still keeps the historical retry-once.
func TestReplicaFailoverPrefersOtherReplica(t *testing.T) {
	const nodes, seed = 300, 71
	fleet := startFleet(t, nodes, seed, 1, bellflower.PartitionClustered)
	deadProxy, deadURL := proxied(t, fleet.addrs[0])
	deadProxy.SetDown(true)

	routerRepo := freshRepo(t, nodes, seed)
	ix := labeling.NewIndex(routerRepo)
	views := serve.PartitionRepositoryViews(ix, 1, serve.PartitionClustered)
	desc := shardrpc.ViewDescriptor(views[0], 0, 1, serve.PartitionClustered)
	mk := func(addr string) *shardrpc.RemoteShard {
		return shardrpc.NewRemoteShard(addr, views[0], desc, shardrpc.RemoteShardConfig{})
	}

	group := shardrpc.NewReplicaSet([]*shardrpc.RemoteShard{mk(deadURL), mk(fleet.addrs[0])}, serve.HealthConfig{})
	defer group.Close()

	personal := randomPersonal(rand.New(rand.NewSource(seed)), routerRepo, 2)
	opts := bellflower.DefaultOptions()
	opts.MinSim = 0.4
	rep, err := group.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatalf("failover to the live replica did not rescue the request: %v", err)
	}
	if rep == nil {
		t.Fatal("nil report after failover")
	}
	if _, dropped, _ := deadProxy.Counts(); dropped == 0 {
		t.Fatal("the dead replica was never attempted; the test exercised nothing")
	}
	st := group.Stats()
	if st.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1", st.Failovers)
	}
	if len(st.Replicas) != 2 {
		t.Fatalf("Replicas = %+v, want 2 snapshots", st.Replicas)
	}

	// Single replica whose first connection dies mid-flight: the doubled
	// attempt order preserves the historical retry-once on the SAME
	// endpoint, and that retry is NOT a failover.
	var killed atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/match", func(w http.ResponseWriter, r *http.Request) {
		if killed.CompareAndSwap(false, true) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder not hijackable")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close() // first attempt dies below HTTP
			return
		}
		fleet.hosts[0].HandleMatch(w, r)
	})
	mux.HandleFunc("/v1/shard/stats", fleet.hosts[0].HandleStats)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	single := shardrpc.NewReplicaSet([]*shardrpc.RemoteShard{mk(srv.URL)}, serve.HealthConfig{})
	defer single.Close()
	if _, err := single.Match(context.Background(), personal, opts); err != nil {
		t.Fatalf("single-replica retry-once did not rescue the request: %v", err)
	}
	if !killed.Load() {
		t.Fatal("the kill path was never exercised")
	}
	if st := single.Stats(); st.Failovers != 0 {
		t.Fatalf("single-replica retry counted %d failovers; same-endpoint retries are not failovers", st.Failovers)
	}
}

// TestDistributedHealthStressRace is the -race stress for the control
// plane: fast background probes, fault-flapping proxies, concurrent match
// traffic, partial-mode toggling and stats/metrics scraping all race on
// the shard state transitions, ending in a Close under fire. It asserts
// no data races and no panics, not outcomes — under flapping faults both
// complete, incomplete and failed requests are legitimate.
func TestDistributedHealthStressRace(t *testing.T) {
	const nodes, seed, shards = 300, 81, 2
	fleetA := startFleet(t, nodes, seed, shards, bellflower.PartitionClustered)
	fleetB := startFleet(t, nodes, seed, shards, bellflower.PartitionClustered)
	proxies := make([]*faultproxy.Proxy, 0, 2*shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		pa, ua := proxied(t, fleetA.addrs[i])
		pb, ub := proxied(t, fleetB.addrs[i])
		proxies = append(proxies, pa, pb)
		addrs[i] = ua + "|" + ub
	}

	routerRepo := freshRepo(t, nodes, seed)
	backend, err := bellflower.NewDistributedService(routerRepo, addrs,
		bellflower.ServiceConfig{
			Workers:        2,
			PartialResults: true,
			HealthInterval: 5 * time.Millisecond,
			HealthFailures: 2,
			DefaultTimeout: 2 * time.Second,
		}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatal(err)
	}

	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.MinSim = 0.4
	opts.Threshold = 0.6

	var wg sync.WaitGroup
	// Match traffic: rotating personals and cache-busting top_n, mirroring
	// the hot-reload stress shape.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed*100 + g)))
			for i := 0; i < 6; i++ {
				o := opts
				o.TopN = 3 + (g*6+i)%7
				personal := randomPersonal(rng, routerRepo, 1+i%3)
				_, _ = backend.Match(context.Background(), personal, o)
			}
		}(g)
	}
	// Chaos: flap every proxy through down/latency/5xx bursts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			p := proxies[rng.Intn(len(proxies))]
			switch i % 3 {
			case 0:
				p.SetDown(!p.Down())
			case 1:
				p.InjectStatus(503, 2)
			case 2:
				p.SetLatency(time.Duration(rng.Intn(3)) * time.Millisecond)
			}
			time.Sleep(2 * time.Millisecond)
		}
		for _, p := range proxies {
			p.SetDown(false)
			p.SetLatency(0)
		}
	}()
	// Scraper: snapshots + Prometheus rendering + partial-mode toggling
	// race against the health transitions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			total, perShard := backend.Snapshot()
			_ = serve.WritePrometheusSnapshot(io.Discard, total, perShard)
			backend.SetPartialResults(i%4 != 3)
			time.Sleep(3 * time.Millisecond)
		}
		backend.SetPartialResults(true)
	}()
	wg.Wait()
	backend.Close() // stops monitors under whatever state the chaos left
}
