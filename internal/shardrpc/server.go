package shardrpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/serve"
	"bellflower/internal/trace"
)

// maxMatchBody bounds a shard match request body. Projected candidate sets
// scale with the repository, so the bound is far above the public daemon's
// 1 MiB but still finite — a shard endpoint is internal infrastructure,
// not an open ingress.
const maxMatchBody = 64 << 20

// ShardServer adapts one view-backed Service to the shard wire protocol:
// HandleMatch and HandleStats are the handlers bellflower-server mounts at
// /v1/shard/match and /v1/shard/stats in -shard-of mode. The server
// decodes requests against its own view, verifies the caller's descriptor
// and request signature, and serves through the exact Service entry points
// an in-process router would call — so a remote fan-out's per-shard
// reports, caches and dedupe behave identically to the local topology.
type ShardServer struct {
	svc  *serve.Service
	view *labeling.View
	desc Descriptor
	rec  *trace.Recorder // optional local ring; see SetTraceRecorder
}

// NewShardServer wraps a Service running on view (pipeline.NewViewRunner)
// with the shard's descriptor.
func NewShardServer(svc *serve.Service, view *labeling.View, desc Descriptor) *ShardServer {
	return &ShardServer{svc: svc, view: view, desc: desc}
}

// SetTraceRecorder attaches a local trace ring: every traced match is
// observed into it, so a shard host can serve its own /v1/traces even
// though its spans also ship back to the router. With no recorder set,
// only requests that arrive with an X-Bellflower-Trace header are traced
// (the spans exist solely to be returned). Not safe to call concurrently
// with traffic; wire it up before mounting the handlers.
func (s *ShardServer) SetTraceRecorder(rec *trace.Recorder) { s.rec = rec }

// Service returns the underlying view-backed service (the caller may mount
// additional endpoints — metrics, health — against it).
func (s *ShardServer) Service() *serve.Service { return s.svc }

// Descriptor returns the shard's descriptor.
func (s *ShardServer) Descriptor() Descriptor { return s.desc }

// Close shuts the underlying service down.
func (s *ShardServer) Close() { s.svc.Close() }

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// matchStatus maps a shard service error onto the protocol's status
// codes. RemoteShard.statusError is its inverse — a new error class added
// here needs a case there (and in the public daemon's matchStatus, which
// maps the same serve errors for end clients) or it degrades to a generic
// 500 across the hop.
func matchStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrSchemaTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, serve.ErrClosed), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// HandleMatch serves POST /v1/shard/match. A request arriving with an
// X-Bellflower-Trace header is served under a resumed trace — the shard's
// decode/match/encode spans (and the pipeline spans beneath them) parent
// back to the caller's span and ship home in MatchResponse.Spans, so the
// router stitches ONE tree across the process boundary.
func (s *ShardServer) HandleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxMatchBody)

	ctx := r.Context()
	hv := r.Header.Get(trace.Header)
	var tr *trace.Trace
	var root *trace.Span
	if hv != "" || s.rec != nil {
		ctx, tr, root = trace.Resume(ctx, hv, "shard.serve")
		root.SetAttrInt("shard", int64(s.desc.Shard))
		defer func() {
			root.End() // idempotent; the success path already ended it
			if s.rec != nil {
				s.rec.Observe(tr)
			}
		}()
	}
	fail := func(sp *trace.Span, status int, msg string) {
		sp.SetAttr("error", msg)
		sp.End()
		writeJSON(w, status, errorJSON{Error: msg})
	}

	_, dsp := trace.StartSpan(ctx, "decode")
	var req MatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(dsp, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// A descriptor mismatch means the caller partitioned differently (or
	// holds a different repository): serving would return mappings in the
	// wrong ID space. 409, not 400 — the request is well-formed, the
	// topologies disagree.
	if !req.Descriptor.Equal(s.desc) {
		fail(dsp, http.StatusConflict,
			fmt.Sprintf("descriptor mismatch: caller expects %s, this server hosts %s", req.Descriptor, s.desc))
		return
	}
	personal, err := DecodeTree(req.Personal)
	if err != nil {
		fail(dsp, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := DecodeOptions(req.Options)
	if err != nil {
		fail(dsp, http.StatusBadRequest, err.Error())
		return
	}
	// Integrity: the canonical request signature must survive the codec
	// round trip, otherwise the shard would compute (and cache) a subtly
	// different request than the router merged.
	if req.Signature != "" {
		if got := serve.Signature(personal, opts); got != req.Signature {
			fail(dsp, http.StatusBadRequest,
				fmt.Sprintf("request signature mismatch after decode: got %q, want %q", got, req.Signature))
			return
		}
	}
	var cands *matcher.Candidates
	var clusters []*cluster.Cluster
	if req.HasClusters && !req.HasCandidates {
		fail(dsp, http.StatusBadRequest, "clusters staged without candidates")
		return
	}
	if req.HasCandidates {
		if cands, err = DecodeCandidates(s.view, personal, req.Candidates); err != nil {
			fail(dsp, http.StatusBadRequest, err.Error())
			return
		}
	}
	if req.HasClusters {
		// DecodeClusters returns a non-nil slice even for zero clusters —
		// a staged-empty projection is valid (MatchWithClusters requires
		// non-nil).
		if clusters, err = DecodeClusters(s.view, req.Clusters); err != nil {
			fail(dsp, http.StatusBadRequest, err.Error())
			return
		}
	}
	dsp.End()

	mctx, msp := trace.StartSpan(ctx, "match")
	var rep *pipeline.Report
	switch {
	case req.HasClusters:
		rep, err = s.svc.MatchWithClusters(mctx, personal, opts, cands, clusters, req.Iterations)
	case req.HasCandidates:
		rep, err = s.svc.MatchWithCandidates(mctx, personal, opts, cands)
	default:
		rep, err = s.svc.Match(mctx, personal, opts)
	}
	if err != nil {
		fail(msp, matchStatus(err), err.Error())
		return
	}
	msp.End()

	_, ensp := trace.StartSpan(ctx, "encode")
	wr, err := EncodeReport(s.view, rep)
	if err != nil {
		fail(ensp, http.StatusInternalServerError, err.Error())
		return
	}
	ensp.End()

	resp := MatchResponse{Report: wr}
	if tr != nil && hv != "" {
		// End the root before exporting so the stitched tree carries the
		// shard's total serve time; the deferred End is a no-op after this.
		root.End()
		resp.Spans = EncodeSpans(tr.Spans())
	}
	writeJSON(w, http.StatusOK, resp)
}

// HandleStats serves GET /v1/shard/stats: the shard's instrumentation
// snapshot plus its descriptor (the health-check handshake).
func (s *ShardServer) HandleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "GET required"})
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{Descriptor: s.desc, Stats: s.svc.Stats()})
}
