package shardrpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"bellflower/internal/labeling"
	"bellflower/internal/pipeline"
	"bellflower/internal/serve"
)

// maxMatchBody bounds a shard match request body. Projected candidate sets
// scale with the repository, so the bound is far above the public daemon's
// 1 MiB but still finite — a shard endpoint is internal infrastructure,
// not an open ingress.
const maxMatchBody = 64 << 20

// ShardServer adapts one view-backed Service to the shard wire protocol:
// HandleMatch and HandleStats are the handlers bellflower-server mounts at
// /v1/shard/match and /v1/shard/stats in -shard-of mode. The server
// decodes requests against its own view, verifies the caller's descriptor
// and request signature, and serves through the exact Service entry points
// an in-process router would call — so a remote fan-out's per-shard
// reports, caches and dedupe behave identically to the local topology.
type ShardServer struct {
	svc  *serve.Service
	view *labeling.View
	desc Descriptor
}

// NewShardServer wraps a Service running on view (pipeline.NewViewRunner)
// with the shard's descriptor.
func NewShardServer(svc *serve.Service, view *labeling.View, desc Descriptor) *ShardServer {
	return &ShardServer{svc: svc, view: view, desc: desc}
}

// Service returns the underlying view-backed service (the caller may mount
// additional endpoints — metrics, health — against it).
func (s *ShardServer) Service() *serve.Service { return s.svc }

// Descriptor returns the shard's descriptor.
func (s *ShardServer) Descriptor() Descriptor { return s.desc }

// Close shuts the underlying service down.
func (s *ShardServer) Close() { s.svc.Close() }

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// matchStatus maps a shard service error onto the protocol's status
// codes. RemoteShard.statusError is its inverse — a new error class added
// here needs a case there (and in the public daemon's matchStatus, which
// maps the same serve errors for end clients) or it degrades to a generic
// 500 across the hop.
func matchStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrSchemaTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, serve.ErrClosed), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// HandleMatch serves POST /v1/shard/match.
func (s *ShardServer) HandleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxMatchBody)
	var req MatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
		return
	}
	// A descriptor mismatch means the caller partitioned differently (or
	// holds a different repository): serving would return mappings in the
	// wrong ID space. 409, not 400 — the request is well-formed, the
	// topologies disagree.
	if !req.Descriptor.Equal(s.desc) {
		writeJSON(w, http.StatusConflict, errorJSON{
			Error: fmt.Sprintf("descriptor mismatch: caller expects %s, this server hosts %s", req.Descriptor, s.desc),
		})
		return
	}
	personal, err := DecodeTree(req.Personal)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	opts, err := DecodeOptions(req.Options)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	// Integrity: the canonical request signature must survive the codec
	// round trip, otherwise the shard would compute (and cache) a subtly
	// different request than the router merged.
	if req.Signature != "" {
		if got := serve.Signature(personal, opts); got != req.Signature {
			writeJSON(w, http.StatusBadRequest, errorJSON{
				Error: fmt.Sprintf("request signature mismatch after decode: got %q, want %q", got, req.Signature),
			})
			return
		}
	}

	var rep *pipeline.Report
	switch {
	case req.HasClusters:
		if !req.HasCandidates {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "clusters staged without candidates"})
			return
		}
		cands, err := DecodeCandidates(s.view, personal, req.Candidates)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		// DecodeClusters returns a non-nil slice even for zero clusters —
		// a staged-empty projection is valid (MatchWithClusters requires
		// non-nil).
		clusters, err := DecodeClusters(s.view, req.Clusters)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		rep, err = s.svc.MatchWithClusters(r.Context(), personal, opts, cands, clusters, req.Iterations)
		if err != nil {
			writeJSON(w, matchStatus(err), errorJSON{Error: err.Error()})
			return
		}
	case req.HasCandidates:
		cands, err := DecodeCandidates(s.view, personal, req.Candidates)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		rep, err = s.svc.MatchWithCandidates(r.Context(), personal, opts, cands)
		if err != nil {
			writeJSON(w, matchStatus(err), errorJSON{Error: err.Error()})
			return
		}
	default:
		rep, err = s.svc.Match(r.Context(), personal, opts)
		if err != nil {
			writeJSON(w, matchStatus(err), errorJSON{Error: err.Error()})
			return
		}
	}
	wr, err := EncodeReport(s.view, rep)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, MatchResponse{Report: wr})
}

// HandleStats serves GET /v1/shard/stats: the shard's instrumentation
// snapshot plus its descriptor (the health-check handshake).
func (s *ShardServer) HandleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "GET required"})
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{Descriptor: s.desc, Stats: s.svc.Stats()})
}
