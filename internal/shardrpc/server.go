package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sync/atomic"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
	"bellflower/internal/trace"
)

// maxMatchBody bounds a shard match request body. Projected candidate sets
// scale with the repository, so the bound is far above the public daemon's
// 1 MiB but still finite — a shard endpoint is internal infrastructure,
// not an open ingress.
const maxMatchBody = 64 << 20

// ShardServer adapts one view-backed Service to the shard wire protocol:
// HandleMatch and HandleStats are the handlers bellflower-server mounts at
// /v1/shard/match and /v1/shard/stats in -shard-of mode. The server
// decodes requests against its own view, verifies the caller's descriptor
// and request signature, and serves through the exact Service entry points
// an in-process router would call — so a remote fan-out's per-shard
// reports, caches and dedupe behave identically to the local topology.
//
// Requests declare their codec via Content-Type (application/json or
// application/x-bellflower-shard); the response mirrors it. Error bodies
// are always JSON. A mismatched Content-Type is rejected with 415 rather
// than guessed at — codec negotiation must never silently mis-decode.
type ShardServer struct {
	svc   *serve.Service
	view  *labeling.View
	desc  Descriptor
	rec   *trace.Recorder // optional local ring; see SetTraceRecorder
	projc *serve.ProjectionCache

	// jsonOnly restricts the shard to the JSON codec and disables
	// projection references — the legacy wire surface, for rolling
	// upgrades and mixed-fleet testing. See SetJSONOnly.
	jsonOnly bool

	// Wire traffic counters (body bytes by direction and codec), surfaced
	// through Stats.
	inJSON, inBinary, outJSON, outBinary atomic.Int64
}

// NewShardServer wraps a Service running on view (pipeline.NewViewRunner)
// with the shard's descriptor. The server speaks both codecs and resolves
// projection references out of a content-addressed cache charged to the
// service's memory governor.
func NewShardServer(svc *serve.Service, view *labeling.View, desc Descriptor) *ShardServer {
	return &ShardServer{svc: svc, view: view, desc: desc, projc: svc.NewProjectionCache()}
}

// SetJSONOnly restricts the shard to the legacy JSON wire surface: binary
// requests are rejected with 415, projection references with 400, and the
// stats handshake stops advertising codecs — exactly how a pre-codec
// build answers, so rolling-upgrade interop is testable against current
// code. Not safe to call concurrently with traffic; set it before
// mounting the handlers.
func (s *ShardServer) SetJSONOnly() { s.jsonOnly = true }

// SetTraceRecorder attaches a local trace ring: every traced match is
// observed into it, so a shard host can serve its own /v1/traces even
// though its spans also ship back to the router. With no recorder set,
// only requests that arrive with an X-Bellflower-Trace header are traced
// (the spans exist solely to be returned). Not safe to call concurrently
// with traffic; wire it up before mounting the handlers.
func (s *ShardServer) SetTraceRecorder(rec *trace.Recorder) { s.rec = rec }

// Service returns the underlying view-backed service (the caller may mount
// additional endpoints — metrics, health — against it).
func (s *ShardServer) Service() *serve.Service { return s.svc }

// Descriptor returns the shard's descriptor.
func (s *ShardServer) Descriptor() Descriptor { return s.desc }

// Stats returns the service's snapshot with the shard server's transport
// counters folded in (wire bytes by direction and codec). The projection
// cache counters are already the service's own.
func (s *ShardServer) Stats() serve.Stats {
	st := s.svc.Stats()
	st.WireBytes.InJSON += s.inJSON.Load()
	st.WireBytes.InBinary += s.inBinary.Load()
	st.WireBytes.OutJSON += s.outJSON.Load()
	st.WireBytes.OutBinary += s.outBinary.Load()
	return st
}

// WritePrometheus renders the shard's full stats snapshot — the service
// counters plus the wire-level figures only the shard server holds
// (bellflower_wire_bytes_total, the projection-cache counters) — in the
// Prometheus text exposition format. The shard daemon's /metrics endpoint
// uses this instead of the bare service snapshot.
func (s *ShardServer) WritePrometheus(w io.Writer) error {
	return serve.WritePrometheus(w, s.Stats(), 1)
}

// Codecs lists the codecs this shard accepts, as advertised in the stats
// handshake. A JSON-only shard advertises nothing — indistinguishable
// from a pre-codec build, which is the point.
func (s *ShardServer) Codecs() []string {
	if s.jsonOnly {
		return nil
	}
	return []string{CodecJSON, CodecBinary}
}

// Close shuts the underlying service down.
func (s *ShardServer) Close() { s.svc.Close() }

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// matchStatus maps a shard service error onto the protocol's status
// codes. RemoteShard.statusError is its inverse — a new error class added
// here needs a case there (and in the public daemon's matchStatus, which
// maps the same serve errors for end clients) or it degrades to a generic
// 500 across the hop.
func matchStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrSchemaTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, serve.ErrClosed), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// requestCodec resolves a match request's Content-Type to a codec name.
// An absent Content-Type means JSON (curl-friendliness); anything other
// than the two match media types is a 415 — never guessed at.
func requestCodec(r *http.Request) (string, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return CodecJSON, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return "", fmt.Errorf("unparseable Content-Type %q", ct)
	}
	switch mt {
	case ContentTypeJSON:
		return CodecJSON, nil
	case ContentTypeBinary:
		return CodecBinary, nil
	}
	return "", fmt.Errorf("unsupported Content-Type %q (want %s or %s)", mt, ContentTypeJSON, ContentTypeBinary)
}

// HandleMatch serves POST /v1/shard/match. A request arriving with an
// X-Bellflower-Trace header is served under a resumed trace — the shard's
// decode/match/encode spans (and the pipeline spans beneath them) parent
// back to the caller's span and ship home in MatchResponse.Spans, so the
// router stitches ONE tree across the process boundary.
func (s *ShardServer) HandleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	codec, cerr := requestCodec(r)
	if cerr == nil && codec == CodecBinary && s.jsonOnly {
		cerr = fmt.Errorf("unsupported Content-Type %q (this shard speaks %s only)", ContentTypeBinary, ContentTypeJSON)
	}
	if cerr != nil {
		writeJSON(w, http.StatusUnsupportedMediaType, errorJSON{Error: cerr.Error()})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxMatchBody)

	ctx := r.Context()
	hv := r.Header.Get(trace.Header)
	var tr *trace.Trace
	var root *trace.Span
	if hv != "" || s.rec != nil {
		ctx, tr, root = trace.Resume(ctx, hv, "shard.serve")
		root.SetAttrInt("shard", int64(s.desc.Shard))
		defer func() {
			root.End() // idempotent; the success path already ended it
			if s.rec != nil {
				s.rec.Observe(tr)
			}
		}()
	}
	fail := func(sp *trace.Span, status int, msg string) {
		sp.SetAttr("error", msg)
		sp.End()
		writeJSON(w, status, errorJSON{Error: msg})
	}

	_, dsp := trace.StartSpan(ctx, "decode")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		fail(dsp, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var req MatchRequest
	if codec == CodecBinary {
		s.inBinary.Add(int64(len(body)))
		preq, err := DecodeBinaryMatchRequest(body)
		if err != nil {
			fail(dsp, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		req = *preq
	} else {
		s.inJSON.Add(int64(len(body)))
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			fail(dsp, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if s.jsonOnly && (req.ProjectionRef || req.ProjectionHash != "") {
			// A pre-codec build's strict decoder rejects these fields as
			// unknown; the emulation must too, or mixed-fleet tests would
			// pass against traffic a real legacy shard refuses.
			fail(dsp, http.StatusBadRequest, `bad request body: json: unknown field "projection_hash"`)
			return
		}
	}
	// A descriptor mismatch means the caller partitioned differently (or
	// holds a different repository): serving would return mappings in the
	// wrong ID space. 409, not 400 — the request is well-formed, the
	// topologies disagree.
	if !req.Descriptor.Equal(s.desc) {
		fail(dsp, http.StatusConflict,
			fmt.Sprintf("descriptor mismatch: caller expects %s, this server hosts %s", req.Descriptor, s.desc))
		return
	}
	personal, err := DecodeTree(req.Personal)
	if err != nil {
		fail(dsp, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := DecodeOptions(req.Options)
	if err != nil {
		fail(dsp, http.StatusBadRequest, err.Error())
		return
	}
	// Integrity: the canonical request signature must survive the codec
	// round trip, otherwise the shard would compute (and cache) a subtly
	// different request than the router merged.
	if req.Signature != "" {
		if got := serve.Signature(personal, opts); got != req.Signature {
			fail(dsp, http.StatusBadRequest,
				fmt.Sprintf("request signature mismatch after decode: got %q, want %q", got, req.Signature))
			return
		}
	}

	if req.ProjectionRef {
		// The request references its projection by content address instead
		// of shipping it. Resolve or ask for the payload — 428 tells the
		// client to retry once with the projection inlined; it is a
		// protocol turn, not a failure, so clients neither fail over nor
		// count it against replica health.
		if s.jsonOnly {
			fail(dsp, http.StatusBadRequest, "projection references unsupported (JSON-only shard)")
			return
		}
		if req.ProjectionHash == "" {
			fail(dsp, http.StatusBadRequest, "projection reference without projection hash")
			return
		}
		proj, ok := s.projc.Get(req.ProjectionHash)
		if !ok {
			fail(dsp, http.StatusPreconditionRequired,
				fmt.Sprintf("projection-needed: %s is not cached on this shard", req.ProjectionHash))
			return
		}
		req.HasCandidates = proj.HasCandidates
		req.HasClusters = proj.HasClusters
		req.Iterations = proj.Iterations
		var cands *matcher.Candidates
		if proj.Candidates != nil {
			// The cached candidates are bound to the structurally identical
			// personal tree of the request that populated the entry; rebind
			// them to THIS request's decoded tree (O(|personal|), slices
			// shared).
			cands = proj.Candidates.Rebind(personal)
		}
		dsp.End()
		s.runMatch(ctx, w, codec, hv, tr, root, req, personal, opts, cands, proj.Clusters)
		return
	}

	var cands *matcher.Candidates
	var clusters []*cluster.Cluster
	if req.HasClusters && !req.HasCandidates {
		fail(dsp, http.StatusBadRequest, "clusters staged without candidates")
		return
	}
	// A full payload carrying a content address must actually hash to it —
	// self-verifying, so a corrupt or mislabelled projection is rejected
	// instead of cached under the wrong key.
	if req.ProjectionHash != "" {
		if got := ProjectionDigest(&req); got != req.ProjectionHash {
			fail(dsp, http.StatusBadRequest,
				fmt.Sprintf("projection digest mismatch: payload hashes to %s, request claims %s", got, req.ProjectionHash))
			return
		}
	}
	if req.HasCandidates {
		if cands, err = DecodeCandidates(s.view, personal, req.Candidates); err != nil {
			fail(dsp, http.StatusBadRequest, err.Error())
			return
		}
	}
	if req.HasClusters {
		// DecodeClusters returns a non-nil slice even for zero clusters —
		// a staged-empty projection is valid (MatchWithClusters requires
		// non-nil).
		if clusters, err = DecodeClusters(s.view, req.Clusters); err != nil {
			fail(dsp, http.StatusBadRequest, err.Error())
			return
		}
	}
	if req.ProjectionHash != "" && req.HasCandidates && !s.jsonOnly {
		s.projc.Put(req.ProjectionHash, serve.Projection{
			HasCandidates: req.HasCandidates,
			Candidates:    cands,
			HasClusters:   req.HasClusters,
			Clusters:      clusters,
			Iterations:    req.Iterations,
		})
	}
	dsp.End()
	s.runMatch(ctx, w, codec, hv, tr, root, req, personal, opts, cands, clusters)
}

// runMatch executes the decoded request through the service and writes the
// response in the request's codec.
func (s *ShardServer) runMatch(ctx context.Context, w http.ResponseWriter, codec, hv string,
	tr *trace.Trace, root *trace.Span, req MatchRequest,
	personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates, clusters []*cluster.Cluster) {
	fail := func(sp *trace.Span, status int, msg string) {
		sp.SetAttr("error", msg)
		sp.End()
		writeJSON(w, status, errorJSON{Error: msg})
	}

	mctx, msp := trace.StartSpan(ctx, "match")
	var rep *pipeline.Report
	var err error
	switch {
	case req.HasClusters:
		rep, err = s.svc.MatchWithClusters(mctx, personal, opts, cands, clusters, req.Iterations)
	case req.HasCandidates:
		rep, err = s.svc.MatchWithCandidates(mctx, personal, opts, cands)
	default:
		rep, err = s.svc.Match(mctx, personal, opts)
	}
	if err != nil {
		fail(msp, matchStatus(err), err.Error())
		return
	}
	msp.End()

	_, ensp := trace.StartSpan(ctx, "encode")
	wr, err := EncodeReport(s.view, rep)
	if err != nil {
		fail(ensp, http.StatusInternalServerError, err.Error())
		return
	}
	ensp.End()

	resp := MatchResponse{Report: wr}
	if tr != nil && hv != "" {
		// End the root before exporting so the stitched tree carries the
		// shard's total serve time; the deferred End is a no-op after this.
		root.End()
		resp.Spans = EncodeSpans(tr.Spans())
	}
	if codec == CodecBinary {
		b := EncodeBinaryMatchResponse(&resp)
		s.outBinary.Add(int64(len(b)))
		w.Header().Set("Content-Type", ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
		return
	}
	b, err := json.Marshal(resp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	s.outJSON.Add(int64(len(b)))
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// HandleStats serves GET /v1/shard/stats: the shard's instrumentation
// snapshot plus its descriptor (the health-check handshake) and codec
// advertisement (the feature-negotiation handshake).
func (s *ShardServer) HandleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "GET required"})
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{Descriptor: s.desc, Codecs: s.Codecs(), Stats: s.Stats()})
}
