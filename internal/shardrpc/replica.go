package shardrpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
	"bellflower/internal/trace"
)

// ReplicaSet is a serve.ShardBackend that serves ONE shard through N
// replica servers hosting identical copies of it (same descriptor, same
// view). Requests load-balance across the healthy replicas (round-robin),
// and a transport error mid-request FAILS OVER to the next replica in the
// same attempt — one replica dying yields a complete report, not an
// Incomplete merge. This subsumes RemoteShard's retry-once: the retry
// budget is one attempt per replica (plus the unhealthy ones as a last
// resort), so a retry prefers a DIFFERENT machine over the one that just
// failed; a single-replica set degenerates to exactly the old
// retry-once-on-the-same-endpoint behaviour.
//
// Each replica carries a serve.HealthMonitor: transport errors during
// live traffic count toward its failure threshold, and StartHealth runs
// the background probe loops (RemoteShard.Check — which re-verifies the
// descriptor handshake — at a jittered interval), so a dead replica is
// marked unhealthy, skipped by the router's partial-results fan-out
// without paying a timeout, and re-admitted only after a probe proves
// both liveness AND an unchanged topology.
//
// All methods are safe for concurrent use. Create with NewReplicaSet and
// release with Close (which stops the monitors and closes every replica).
type ReplicaSet struct {
	replicas []*RemoteShard
	mons     []*serve.HealthMonitor

	cursor       atomic.Uint64 // round-robin start of the attempt order
	failovers    atomic.Int64  // attempts moved to a DIFFERENT replica after a transport error
	unreachables atomic.Int64  // requests that exhausted every replica without an HTTP response
	closed       atomic.Bool
	closeOnce    sync.Once
}

var _ serve.ShardBackend = (*ReplicaSet)(nil)
var _ serve.HealthReporter = (*ReplicaSet)(nil)

// NewReplicaSet groups replica clients for one shard. All replicas must
// expect the same descriptor (they serve copies of the same shard); it
// panics on an empty set or a descriptor disagreement — both programmer
// errors, like NewRouter's empty-shard panic. hcfg tunes the per-replica
// health monitors; monitors start passive — call StartHealth to launch
// the background probe loops.
func NewReplicaSet(replicas []*RemoteShard, hcfg serve.HealthConfig) *ReplicaSet {
	if len(replicas) == 0 {
		panic("shardrpc: NewReplicaSet needs at least one replica")
	}
	for _, r := range replicas[1:] {
		if !r.desc.Equal(replicas[0].desc) {
			panic(fmt.Sprintf("shardrpc: NewReplicaSet: replica %s expects descriptor %s, replica %s expects %s",
				r.base, r.desc, replicas[0].base, replicas[0].desc))
		}
	}
	z := &ReplicaSet{
		replicas: append([]*RemoteShard(nil), replicas...),
		mons:     make([]*serve.HealthMonitor, len(replicas)),
	}
	for i, r := range z.replicas {
		z.mons[i] = serve.NewHealthMonitor(r.base, r.Check, hcfg)
	}
	return z
}

// StartHealth launches the background probe loop of every replica's
// monitor. Idempotent; Close stops the loops.
func (z *ReplicaSet) StartHealth() {
	for _, m := range z.mons {
		m.Start()
	}
}

// Addr renders the replica group ("a|b") for error messages and logs.
func (z *ReplicaSet) Addr() string {
	addrs := make([]string, len(z.replicas))
	for i, r := range z.replicas {
		addrs[i] = r.base
	}
	return strings.Join(addrs, "|")
}

// Descriptor returns the shard descriptor every replica is expected to
// host.
func (z *ReplicaSet) Descriptor() Descriptor { return z.replicas[0].desc }

// Replicas reports the group size.
func (z *ReplicaSet) Replicas() int { return len(z.replicas) }

// Monitor returns the i-th replica's health monitor (for tests and
// eager probing; the set retains ownership).
func (z *ReplicaSet) Monitor(i int) *serve.HealthMonitor { return z.mons[i] }

// Healthy implements serve.HealthReporter: the shard is serviceable while
// at least one replica is. The router's partial-results fan-out skips the
// shard — without sending anything — only when this is false.
func (z *ReplicaSet) Healthy() bool {
	for _, m := range z.mons {
		if m.Healthy() {
			return true
		}
	}
	return false
}

// CapacityHint sizes the router's batch fan-out: replicas share the load,
// so the group's capacity is the sum of theirs.
func (z *ReplicaSet) CapacityHint() int {
	n := 0
	for _, r := range z.replicas {
		n += r.CapacityHint()
	}
	return n
}

// Check probes every replica concurrently (full descriptor handshake).
// Any reachable replica hosting a WRONG descriptor is a hard error — a
// replica group must never mix topologies. Otherwise one verified replica
// is enough: the unreachable ones are seeded unhealthy in their monitors
// (so the first requests skip them instead of rediscovering the outage)
// and the background loop re-admits them when they recover. All replicas
// unreachable is an error carrying every replica's failure.
func (z *ReplicaSet) Check(ctx context.Context) error {
	errs := make([]error, len(z.replicas))
	var wg sync.WaitGroup
	wg.Add(len(z.replicas))
	for i, r := range z.replicas {
		go func(i int, r *RemoteShard) {
			defer wg.Done()
			errs[i] = r.Check(ctx)
		}(i, r)
	}
	wg.Wait()
	reachable := 0
	for _, err := range errs {
		if err == nil {
			reachable++
		} else if errors.Is(err, ErrDescriptorMismatch) {
			return err
		}
	}
	// Seed the monitors either way: a caller that tolerates the error
	// (partial-results construction) gets a group whose dead replicas are
	// already marked, so the first requests skip instead of rediscovering
	// the outage.
	for i, err := range errs {
		if err != nil {
			z.mons[i].MarkUnhealthy(err)
		}
	}
	if reachable == 0 {
		return fmt.Errorf("shardrpc: no replica of %s reachable: %w", z.Addr(), errors.Join(errs...))
	}
	return nil
}

// Match implements serve.ShardBackend with replica failover.
func (z *ReplicaSet) Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error) {
	return z.match(ctx, personal, opts, nil, false, nil, false, 0)
}

// MatchWithCandidates implements serve.ShardBackend with replica failover.
func (z *ReplicaSet) MatchWithCandidates(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates) (*pipeline.Report, error) {
	if cands == nil {
		return nil, fmt.Errorf("shardrpc: MatchWithCandidates needs a candidate set")
	}
	return z.match(ctx, personal, opts, cands, true, nil, false, 0)
}

// MatchWithClusters implements serve.ShardBackend with replica failover.
func (z *ReplicaSet) MatchWithClusters(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int) (*pipeline.Report, error) {
	if cands == nil {
		return nil, fmt.Errorf("shardrpc: MatchWithClusters needs a candidate set")
	}
	if clusters == nil {
		return nil, fmt.Errorf("shardrpc: MatchWithClusters needs a cluster slice (possibly empty, never nil)")
	}
	return z.match(ctx, personal, opts, cands, true, clusters, true, iterations)
}

// match encodes the request ONCE (all replicas share the descriptor and
// view, so one encoded request serves every attempt — each replica picks
// the body shape its own codec negotiation and projection-cache knowledge
// call for) and walks the attempt order:
// healthy replicas first, rotated round-robin so concurrent requests
// spread across the group; unhealthy replicas last, as a live-traffic
// last resort when every healthy attempt failed. A transport error feeds
// the failing replica's monitor and moves on; an HTTP-level error is the
// shard's authoritative answer and returns immediately, exactly like
// RemoteShard's retry-once.
func (z *ReplicaSet) match(ctx context.Context, personal *schema.Tree, opts pipeline.Options,
	cands *matcher.Candidates, hasCands bool, clusters []*cluster.Cluster, hasClusters bool, iterations int) (*pipeline.Report, error) {
	if z.closed.Load() {
		return nil, serve.ErrClosed
	}
	if personal == nil || personal.Root() == nil {
		return nil, fmt.Errorf("shardrpc: nil personal schema")
	}
	primary := z.replicas[0]
	encStart := time.Now()
	_, esp := trace.StartSpan(ctx, "rpc.encode")
	enc, err := primary.encodeRequest(personal, opts, cands, hasCands, clusters, hasClusters, iterations)
	if err == nil {
		enc.body(primary.useBinary(), primary.slimEligible(enc))
	}
	esp.End()
	primary.stEncode.Observe(time.Since(encStart))
	if err != nil {
		return nil, err
	}

	var lastErr error
	prevFailed := -1
	for _, idx := range z.attemptOrder() {
		if ctx.Err() != nil {
			break
		}
		if prevFailed >= 0 && idx != prevFailed {
			z.failovers.Add(1)
		}
		r := z.replicas[idx]
		actx, asp := trace.StartSpan(ctx, "replica.attempt")
		asp.SetAttr("replica", r.base)
		rep, transport, err := r.post(actx, enc)
		if err == nil {
			asp.End()
			z.mons[idx].ReportSuccess()
			return rep, nil
		}
		asp.SetAttr("error", err.Error())
		asp.End()
		lastErr = err
		if !transport {
			return nil, err
		}
		z.mons[idx].ReportFailure(err)
		prevFailed = idx
	}
	// A caller whose own context expired mid-attempt did not discover an
	// unreachable group — don't charge phantom outages to a healthy one.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	z.unreachables.Add(1)
	return nil, lastErr
}

// attemptOrder builds this request's replica attempt sequence: the
// healthy replicas rotated by the round-robin cursor, then the unhealthy
// ones (same rotation) as a last resort. A single-entry order is doubled
// so one replica keeps the historical retry-once on transport errors.
func (z *ReplicaSet) attemptOrder() []int {
	n := len(z.replicas)
	start := int(z.cursor.Add(1)-1) % n
	order := make([]int, 0, n+1)
	for _, want := range [2]bool{true, false} {
		for off := 0; off < n; off++ {
			i := (start + off) % n
			if z.mons[i].Healthy() == want {
				order = append(order, i)
			}
		}
	}
	if len(order) == 1 {
		order = append(order, order[0])
	}
	return order
}

// Stats implements serve.ShardBackend: the replicas' snapshots merged
// into one shard-level figure (requests spread across replicas, so the
// sum is the shard's total work), with the group's control-plane surface
// attached — per-replica health snapshots (Stats.Replicas) and the
// failover counter. Only healthy replicas are asked for their remote
// stats; a replica already marked unhealthy contributes its client-side
// figures without paying a stats timeout per scrape.
func (z *ReplicaSet) Stats() serve.Stats {
	parts := make([]serve.Stats, len(z.replicas))
	health := make([]serve.ReplicaHealth, len(z.replicas))
	var wg sync.WaitGroup
	for i := range z.replicas {
		health[i] = z.mons[i].Snapshot()
		if !health[i].Healthy {
			parts[i] = z.replicas[i].clientStats()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i] = z.replicas[i].Stats()
		}(i)
	}
	wg.Wait()
	st := serve.MergeStats(parts...)
	te := z.unreachables.Load()
	st.Requests += te
	st.Errors += te
	st.Failovers = z.failovers.Load()
	st.Replicas = health
	return st
}

// Close stops the health monitors and closes every replica client. The
// remote servers are NOT shut down — they belong to their own processes.
func (z *ReplicaSet) Close() {
	z.closeOnce.Do(func() {
		z.closed.Store(true)
		for _, m := range z.mons {
			m.Stop()
		}
		for _, r := range z.replicas {
			r.Close()
		}
	})
}
