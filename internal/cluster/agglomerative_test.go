package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAgglomerativeComponents(t *testing.T) {
	// Two 'a(b)' islands separated by a long spine: threshold 2 keeps them
	// apart, threshold large enough merges them.
	_, _, ix, cands := fixture("a(b)",
		"r(a(b),x(y(z(w(a(b))))))")
	near, err := Agglomerative(ix, cands, AgglomerativeConfig{MergeThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	far, err := Agglomerative(ix, cands, AgglomerativeConfig{MergeThreshold: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(near.Clusters) < 2 {
		t.Errorf("threshold 2 should keep islands apart: %d clusters", len(near.Clusters))
	}
	if len(far.Clusters) != 1 {
		t.Errorf("threshold 12 should merge everything: %d clusters", len(far.Clusters))
	}
}

func TestAgglomerativeTreePureAndDisjoint(t *testing.T) {
	_, _, ix, cands := fixture("book(title,author)",
		"lib(book(title,author),magazine(title,editor))",
		"store(book(title,author))")
	res, err := Agglomerative(ix, cands, AgglomerativeConfig{MergeThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for _, c := range res.Clusters {
		medoidMember := false
		for _, e := range c.Elements {
			if seen[e.Node.ID] {
				t.Fatalf("element %v in two clusters", e.Node)
			}
			seen[e.Node.ID] = true
			total++
			if ix.TreeID(e.Node) != c.TreeID {
				t.Errorf("cluster %d not tree-pure", c.ID)
			}
			if e.Node == c.Medoid {
				medoidMember = true
			}
		}
		if !medoidMember {
			t.Errorf("cluster %d medoid not a member", c.ID)
		}
	}
	// Agglomerative never drops elements.
	if total != len(BuildElements(cands)) {
		t.Errorf("element conservation: %d of %d", total, len(BuildElements(cands)))
	}
	if res.Unassigned != 0 {
		t.Errorf("unassigned = %d", res.Unassigned)
	}
}

func TestAgglomerativeMaxClusterSize(t *testing.T) {
	_, _, ix, cands := fixture("b", "r(b,b,b,b,b,b,b,b,b)")
	res, err := Agglomerative(ix, cands, AgglomerativeConfig{MergeThreshold: 4, MaxClusterSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if c.Len() > 3 {
			t.Errorf("cluster %d has %d > 3 elements", c.ID, c.Len())
		}
	}
	if len(res.Clusters) < 3 {
		t.Errorf("expected at least 3 chunks, got %d", len(res.Clusters))
	}
}

func TestAgglomerativeValidate(t *testing.T) {
	_, _, ix, cands := fixture("a", "a")
	if _, err := Agglomerative(ix, cands, AgglomerativeConfig{MergeThreshold: -1}); err == nil {
		t.Errorf("negative threshold accepted")
	}
	if _, err := Agglomerative(ix, cands, AgglomerativeConfig{MaxClusterSize: -1}); err == nil {
		t.Errorf("negative size accepted")
	}
}

// Property: cluster count is non-increasing in the merge threshold, and at
// threshold 0 every cluster is a set of identical-position elements
// (distance 0 means same node, so singletons).
func TestAgglomerativeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix, cands := randomFixture(rng)
		prev := -1
		for th := 0; th <= 8; th += 2 {
			res, err := Agglomerative(ix, cands, AgglomerativeConfig{MergeThreshold: th})
			if err != nil {
				return false
			}
			if prev >= 0 && len(res.Clusters) > prev {
				return false
			}
			prev = len(res.Clusters)
			if th == 0 {
				for _, c := range res.Clusters {
					if c.Len() != 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
