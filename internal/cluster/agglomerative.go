package cluster

import (
	"fmt"
	"sort"

	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
)

// Agglomerative clustering is the alternative clustering algorithm (the
// paper's Sec. 7 asks for "other distance measures" and related work
// clusters schemas hierarchically, e.g. XClust): single-linkage
// agglomerative clustering with a stopping threshold. Merging the closest
// pair until the minimum inter-cluster distance exceeds t is equivalent to
// taking the connected components of the graph that links elements at tree
// distance ≤ t, which is how it is computed here — O(m²) per tree with the
// O(1) labelled distance, no iteration, no seeding sensitivity.
//
// Compared to the adapted k-means it needs no MEmin seeding and always
// converges in one pass, but it cannot react to the personal schema's
// candidate structure and single linkage chains through dense regions;
// the ablation benchmark contrasts the two.

// AgglomerativeConfig controls Agglomerative.
type AgglomerativeConfig struct {
	// MergeThreshold links elements at tree distance ≤ MergeThreshold;
	// clusters are the connected components. Plays the role of the
	// k-means variants' join threshold.
	MergeThreshold int

	// MaxClusterSize splits oversized components into preorder-contiguous
	// chunks (0 = unlimited), the huge-cluster guard.
	MaxClusterSize int
}

// Validate checks the configuration.
func (c AgglomerativeConfig) Validate() error {
	if c.MergeThreshold < 0 {
		return fmt.Errorf("cluster: negative MergeThreshold")
	}
	if c.MaxClusterSize < 0 {
		return fmt.Errorf("cluster: negative MaxClusterSize")
	}
	return nil
}

// Agglomerative clusters the mapping elements of cands by single-linkage
// with a distance threshold.
func Agglomerative(ix *labeling.Index, cands *matcher.Candidates, cfg AgglomerativeConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	elems := BuildElements(cands)
	byTree := make(map[int][]int) // tree ID -> element indices
	for i, e := range elems {
		tid := ix.TreeID(e.Node)
		byTree[tid] = append(byTree[tid], i)
	}
	tids := make([]int, 0, len(byTree))
	for tid := range byTree {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	res := &Result{Iterations: 1}
	for _, tid := range tids {
		members := byTree[tid]
		// Union-find over this tree's elements.
		parent := make([]int, len(members))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := ix.DistanceID(elems[members[i]].Node.ID, elems[members[j]].Node.ID)
				if d >= 0 && d <= cfg.MergeThreshold {
					ri, rj := find(i), find(j)
					if ri != rj {
						parent[rj] = ri
					}
				}
			}
		}
		comps := map[int][]int{} // root -> element indices
		var order []int
		for i, m := range members {
			r := find(i)
			if _, ok := comps[r]; !ok {
				order = append(order, r)
			}
			comps[r] = append(comps[r], m)
		}
		for _, r := range order {
			for _, chunk := range splitBySize(elems, comps[r], cfg.MaxClusterSize) {
				cl := &Cluster{ID: len(res.Clusters), TreeID: tid}
				for _, i := range chunk {
					cl.Elements = append(cl.Elements, elems[i])
				}
				cl.Medoid = medoidOf(ix, cl.Elements)
				res.Clusters = append(res.Clusters, cl)
			}
		}
	}
	return res, nil
}

// splitBySize chunks a component into preorder-contiguous pieces of at
// most max elements (locality-preserving: preorder neighbours stay
// together).
func splitBySize(elems []Element, comp []int, max int) [][]int {
	if max <= 0 || len(comp) <= max {
		return [][]int{comp}
	}
	sorted := append([]int(nil), comp...)
	sort.Slice(sorted, func(a, b int) bool {
		return elems[sorted[a]].Node.Pre < elems[sorted[b]].Node.Pre
	})
	var out [][]int
	for start := 0; start < len(sorted); start += max {
		end := start + max
		if end > len(sorted) {
			end = len(sorted)
		}
		out = append(out, sorted[start:end])
	}
	return out
}
