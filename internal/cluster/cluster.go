package cluster

import (
	"fmt"
	"math"
	"sort"

	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/schema"
)

// Element is one mapping element to be clustered.
type Element struct {
	// Node is the repository node.
	Node *schema.Node

	// Mask has bit i set when the node is a candidate for the personal
	// node with preorder rank i.
	Mask uint64

	// BestSim is the node's best element similarity across the personal
	// nodes it serves; used only by the hybrid distance extension.
	BestSim float64
}

// BuildElements flattens candidate sets into the deduplicated element
// universe the clusterer partitions.
func BuildElements(cands *matcher.Candidates) []Element {
	if cands.Personal.Len() > 64 {
		panic("cluster: personal schemas with more than 64 nodes not supported")
	}
	byID := make(map[int]int)
	var out []Element
	for i := range cands.Sets {
		for _, c := range cands.Sets[i].Elems {
			j, ok := byID[c.Node.ID]
			if !ok {
				j = len(out)
				byID[c.Node.ID] = j
				out = append(out, Element{Node: c.Node})
			}
			out[j].Mask |= 1 << uint(i)
			if c.Sim > out[j].BestSim {
				out[j].BestSim = c.Sim
			}
		}
	}
	return out
}

// Cluster is a group of mapping elements from a single repository tree.
type Cluster struct {
	// ID is the cluster's index in the result.
	ID int

	// Medoid is the mapping element at the cluster's center of weight.
	Medoid *schema.Node

	// Elements are the member mapping elements.
	Elements []Element

	// TreeID is the repository tree all members belong to.
	TreeID int
}

// Mask returns the union of the member masks: which personal nodes this
// cluster can supply a mapping element for.
func (c *Cluster) Mask() uint64 {
	var m uint64
	for _, e := range c.Elements {
		m |= e.Mask
	}
	return m
}

// Useful reports whether the cluster holds at least one mapping element for
// every personal node (full = bitmask of all personal preorder ranks).
// Only useful clusters can produce complete schema mappings (Sec. 2.3).
func (c *Cluster) Useful(full uint64) bool { return c.Mask()&full == full }

// Len returns the number of member elements.
func (c *Cluster) Len() int { return len(c.Elements) }

// Seeding selects the initial centroids.
type Seeding int

const (
	// SeedMEmin declares every element of the smallest candidate set a
	// centroid — the paper's heuristic: each useful cluster needs at least
	// one element from MEmin, so MEmin members mark all viable regions.
	SeedMEmin Seeding = iota

	// SeedEveryKth spreads centroids uniformly over the element universe
	// (every k-th element in node-ID order, which follows document order).
	// A deterministic baseline used by the seeding ablation benchmark.
	SeedEveryKth
)

// Config controls the clustering run. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// JoinThreshold merges clusters whose medoids are at tree distance
	// <= JoinThreshold during reclustering; 0 disables joining. The
	// paper's variants: 2 = "small clusters", 3 = "medium", 4 = "large".
	JoinThreshold int

	// RemoveBelow deletes clusters with fewer elements during
	// reclustering; 0 disables removal. Freed elements may join
	// neighbouring clusters in the next iteration.
	RemoveBelow int

	// SplitAbove breaks clusters larger than this into two around their
	// farthest element pair; 0 disables splitting. An extension for the
	// paper's "huge clusters" problem.
	SplitAbove int

	// MaxIterations bounds the k-means loop.
	MaxIterations int

	// Stability is the convergence fraction: the loop stops when fewer
	// than Stability × #elements switch clusters and the cluster count
	// changes by less than Stability × #clusters (the paper uses 5%).
	Stability float64

	// Seeding selects the centroid initialization strategy.
	Seeding Seeding

	// SeedStride is the k of SeedEveryKth (ignored otherwise; minimum 1).
	SeedStride int

	// SimBias is the hybrid-distance extension: the effective assignment
	// distance is pathDist × (1 + SimBias × (1 − BestSim)), pulling
	// high-similarity elements toward centroids. 0 = pure path distance
	// (the paper's measure).
	SimBias float64
}

// DefaultConfig returns the paper's "medium clusters" configuration.
// SplitAbove implements the huge-cluster handling the paper performed
// manually ("huge clusters ... are removed 'manually' if necessary"):
// without it, the few very large repository trees keep their candidate
// regions in single oversized clusters and dominate the search space.
func DefaultConfig() Config {
	return Config{
		JoinThreshold: 3,
		RemoveBelow:   2,
		SplitAbove:    60,
		MaxIterations: 12,
		Stability:     0.05,
		Seeding:       SeedMEmin,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxIterations < 1 {
		return fmt.Errorf("cluster: MaxIterations %d < 1", c.MaxIterations)
	}
	if c.Stability < 0 || c.Stability > 1 {
		return fmt.Errorf("cluster: Stability %v outside [0,1]", c.Stability)
	}
	if c.JoinThreshold < 0 || c.RemoveBelow < 0 || c.SplitAbove < 0 {
		return fmt.Errorf("cluster: negative threshold")
	}
	if c.SimBias < 0 {
		return fmt.Errorf("cluster: negative SimBias")
	}
	if c.Seeding == SeedEveryKth && c.SeedStride < 1 {
		return fmt.Errorf("cluster: SeedEveryKth requires SeedStride >= 1")
	}
	return nil
}

// Result is the outcome of a clustering run.
type Result struct {
	// Clusters are the final clusters, ID-ordered.
	Clusters []*Cluster

	// Iterations is the number of k-means iterations executed.
	Iterations int

	// Moves[i] is the number of elements that switched clusters in
	// iteration i; used to study convergence behaviour.
	Moves []int

	// Unassigned counts elements that ended up in no cluster (their tree
	// holds no centroid, or their cluster was removed in the final
	// iteration).
	Unassigned int
}

// UsefulClusters returns the clusters able to produce complete mappings for
// a personal schema with n nodes.
func (r *Result) UsefulClusters(n int) []*Cluster {
	full := fullMask(n)
	var out []*Cluster
	for _, c := range r.Clusters {
		if c.Useful(full) {
			out = append(out, c)
		}
	}
	return out
}

func fullMask(n int) uint64 {
	if n >= 64 {
		panic("cluster: personal schema too large for bitmask")
	}
	return (uint64(1) << uint(n)) - 1
}

// KMeans runs the adapted k-means algorithm (Alg. 1 of the paper) over the
// mapping elements of cands.
func KMeans(ix *labeling.Index, cands *matcher.Candidates, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	elems := BuildElements(cands)
	st := &state{ix: ix, cfg: cfg, elems: elems}
	st.seed(cands)
	res := &Result{}
	prevClusters := len(st.medoids)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		moves := st.assign()
		st.rebuild()
		st.recomputeMedoids()
		st.join()
		st.remove()
		st.split()
		res.Iterations++
		res.Moves = append(res.Moves, moves)
		// Convergence: element moves and cluster-count change both below
		// the stability fraction.
		stableMoves := float64(moves) <= cfg.Stability*float64(len(elems))
		dc := len(st.medoids) - prevClusters
		if dc < 0 {
			dc = -dc
		}
		stableCount := float64(dc) <= cfg.Stability*math.Max(1, float64(prevClusters))
		prevClusters = len(st.medoids)
		if iter > 0 && stableMoves && stableCount {
			break
		}
	}
	res.Clusters, res.Unassigned = st.emit()
	return res, nil
}

// TreeClusters returns the non-clustered baseline: every repository tree
// that holds at least one mapping element becomes one cluster (the paper's
// "tree clusters" rows).
func TreeClusters(ix *labeling.Index, cands *matcher.Candidates) *Result {
	elems := BuildElements(cands)
	byTree := make(map[int][]Element)
	for _, e := range elems {
		tid := ix.TreeID(e.Node)
		byTree[tid] = append(byTree[tid], e)
	}
	tids := make([]int, 0, len(byTree))
	for tid := range byTree {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	res := &Result{}
	for _, tid := range tids {
		members := byTree[tid]
		c := &Cluster{ID: len(res.Clusters), Elements: members, TreeID: tid}
		c.Medoid = medoidOf(ix, members)
		res.Clusters = append(res.Clusters, c)
	}
	return res
}

// state is the per-run mutable bookkeeping of the k-means loop.
type state struct {
	ix    *labeling.Index
	cfg   Config
	elems []Element

	// medoids holds the current centroid element indices.
	medoids []int

	// assignTo[i] is the cluster index of element i, or -1.
	assignTo []int

	// prevMedoidNode[i] is the medoid node ID element i was assigned to in
	// the previous iteration (-1 initially); used to count moves.
	prevMedoidNode []int

	// members[c] lists element indices of cluster c.
	members [][]int

	// centroidsByTree groups current medoid indices by tree for fast
	// assignment.
	centroidsByTree map[int][]int
}

func (st *state) seed(cands *matcher.Candidates) {
	switch st.cfg.Seeding {
	case SeedEveryKth:
		for i := 0; i < len(st.elems); i += st.cfg.SeedStride {
			st.medoids = append(st.medoids, i)
		}
	default: // SeedMEmin
		min := cands.MinSet()
		if min < 0 {
			return
		}
		bit := uint64(1) << uint(min)
		for i, e := range st.elems {
			if e.Mask&bit != 0 {
				st.medoids = append(st.medoids, i)
			}
		}
	}
	st.assignTo = make([]int, len(st.elems))
	st.prevMedoidNode = make([]int, len(st.elems))
	for i := range st.prevMedoidNode {
		st.prevMedoidNode[i] = -1
	}
}

func (st *state) groupCentroids() {
	st.centroidsByTree = make(map[int][]int)
	for c, ei := range st.medoids {
		tid := st.ix.TreeID(st.elems[ei].Node)
		st.centroidsByTree[tid] = append(st.centroidsByTree[tid], c)
	}
}

// assign gives every element to its nearest centroid (same tree only) and
// returns the number of elements whose cluster identity (medoid node)
// changed since the last iteration.
func (st *state) assign() int {
	st.groupCentroids()
	moves := 0
	for i := range st.elems {
		e := &st.elems[i]
		tid := st.ix.TreeID(e.Node)
		best, bestC := math.Inf(1), -1
		for _, c := range st.centroidsByTree[tid] {
			m := st.elems[st.medoids[c]].Node
			d := st.ix.DistanceID(e.Node.ID, m.ID)
			eff := float64(d)
			if st.cfg.SimBias > 0 {
				eff *= 1 + st.cfg.SimBias*(1-e.BestSim)
			}
			if eff < best || (eff == best && bestC >= 0 && m.ID < st.elems[st.medoids[bestC]].Node.ID) {
				best, bestC = eff, c
			}
		}
		st.assignTo[i] = bestC
		newMedoid := -1
		if bestC >= 0 {
			newMedoid = st.elems[st.medoids[bestC]].Node.ID
		}
		if newMedoid != st.prevMedoidNode[i] {
			moves++
		}
		st.prevMedoidNode[i] = newMedoid
	}
	return moves
}

// rebuild regenerates member lists from assignments and drops empty
// clusters.
func (st *state) rebuild() {
	st.members = make([][]int, len(st.medoids))
	for i, c := range st.assignTo {
		if c >= 0 {
			st.members[c] = append(st.members[c], i)
		}
	}
	st.compact()
}

// compact removes clusters with no members, renumbering the rest.
func (st *state) compact() {
	var med []int
	var mem [][]int
	for c := range st.medoids {
		if len(st.members[c]) == 0 {
			continue
		}
		med = append(med, st.medoids[c])
		mem = append(mem, st.members[c])
	}
	st.medoids, st.members = med, mem
}

// recomputeMedoids sets each cluster's centroid to the member minimizing
// the sum of path distances to the other members (the center of weight).
func (st *state) recomputeMedoids() {
	for c, mem := range st.members {
		st.medoids[c] = st.medoidIndex(mem)
	}
}

func (st *state) medoidIndex(mem []int) int {
	if len(mem) == 1 {
		return mem[0]
	}
	best, bestSum := mem[0], math.MaxInt
	for _, i := range mem {
		sum := 0
		for _, j := range mem {
			sum += st.ix.DistanceID(st.elems[i].Node.ID, st.elems[j].Node.ID)
			if sum >= bestSum {
				break
			}
		}
		if sum < bestSum || (sum == bestSum && st.elems[i].Node.ID < st.elems[best].Node.ID) {
			best, bestSum = i, sum
		}
	}
	return best
}

func medoidOf(ix *labeling.Index, elems []Element) *schema.Node {
	best, bestSum := 0, math.MaxInt
	for i := range elems {
		sum := 0
		for j := range elems {
			sum += ix.DistanceID(elems[i].Node.ID, elems[j].Node.ID)
			if sum >= bestSum {
				break
			}
		}
		if sum < bestSum || (sum == bestSum && elems[i].Node.ID < elems[best].Node.ID) {
			best, bestSum = i, sum
		}
	}
	return elems[best].Node
}

// join merges clusters whose medoids lie within JoinThreshold of each other
// (within the same tree), using union-find, then recomputes the medoids of
// merged clusters.
func (st *state) join() {
	if st.cfg.JoinThreshold <= 0 || len(st.medoids) < 2 {
		return
	}
	parent := make([]int, len(st.medoids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byTree := make(map[int][]int)
	for c, ei := range st.medoids {
		tid := st.ix.TreeID(st.elems[ei].Node)
		byTree[tid] = append(byTree[tid], c)
	}
	for _, cs := range byTree {
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				a, b := cs[i], cs[j]
				d := st.ix.DistanceID(st.elems[st.medoids[a]].Node.ID, st.elems[st.medoids[b]].Node.ID)
				if d >= 0 && d <= st.cfg.JoinThreshold {
					ra, rb := find(a), find(b)
					if ra != rb {
						parent[rb] = ra
					}
				}
			}
		}
	}
	merged := make(map[int][]int) // root -> member element indices
	var order []int
	for c := range st.medoids {
		r := find(c)
		if _, ok := merged[r]; !ok {
			order = append(order, r)
		}
		merged[r] = append(merged[r], st.members[c]...)
	}
	if len(order) == len(st.medoids) {
		return // nothing merged
	}
	var med []int
	var mem [][]int
	for _, r := range order {
		m := merged[r]
		med = append(med, st.medoidIndex(m))
		mem = append(mem, m)
	}
	st.medoids, st.members = med, mem
}

// remove deletes clusters smaller than RemoveBelow; their elements become
// free (unassigned) until the next iteration's assignment step.
func (st *state) remove() {
	if st.cfg.RemoveBelow <= 0 {
		return
	}
	var med []int
	var mem [][]int
	for c := range st.medoids {
		if len(st.members[c]) < st.cfg.RemoveBelow {
			continue
		}
		med = append(med, st.medoids[c])
		mem = append(mem, st.members[c])
	}
	st.medoids, st.members = med, mem
}

// split breaks clusters larger than SplitAbove around their (approximate)
// farthest element pair: a double sweep finds two mutually distant members
// which become the medoids of the halves.
func (st *state) split() {
	if st.cfg.SplitAbove <= 0 {
		return
	}
	var med []int
	var mem [][]int
	for c := range st.medoids {
		m := st.members[c]
		if len(m) <= st.cfg.SplitAbove {
			med = append(med, st.medoids[c])
			mem = append(mem, m)
			continue
		}
		a := st.farthestFrom(m, m[0])
		b := st.farthestFrom(m, a)
		var ma, mb []int
		for _, i := range m {
			da := st.ix.DistanceID(st.elems[i].Node.ID, st.elems[a].Node.ID)
			db := st.ix.DistanceID(st.elems[i].Node.ID, st.elems[b].Node.ID)
			if da <= db {
				ma = append(ma, i)
			} else {
				mb = append(mb, i)
			}
		}
		if len(ma) == 0 || len(mb) == 0 {
			med = append(med, st.medoids[c])
			mem = append(mem, m)
			continue
		}
		med = append(med, st.medoidIndex(ma))
		mem = append(mem, ma)
		med = append(med, st.medoidIndex(mb))
		mem = append(mem, mb)
	}
	st.medoids, st.members = med, mem
}

func (st *state) farthestFrom(mem []int, from int) int {
	best, bestD := from, -1
	for _, i := range mem {
		d := st.ix.DistanceID(st.elems[i].Node.ID, st.elems[from].Node.ID)
		if d > bestD || (d == bestD && st.elems[i].Node.ID < st.elems[best].Node.ID) {
			best, bestD = i, d
		}
	}
	return best
}

// emit converts the final state into exported clusters.
func (st *state) emit() ([]*Cluster, int) {
	assigned := 0
	out := make([]*Cluster, 0, len(st.medoids))
	for c, mem := range st.members {
		cl := &Cluster{
			ID:       len(out),
			Medoid:   st.elems[st.medoids[c]].Node,
			TreeID:   st.ix.TreeID(st.elems[st.medoids[c]].Node),
			Elements: make([]Element, 0, len(mem)),
		}
		for _, i := range mem {
			cl.Elements = append(cl.Elements, st.elems[i])
			assigned++
		}
		out = append(out, cl)
	}
	return out, len(st.elems) - assigned
}
