package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/schema"
)

// fixture builds a personal schema, repository, index and candidates.
func fixture(personalSpec string, repoSpecs ...string) (*schema.Tree, *schema.Repository, *labeling.Index, *matcher.Candidates) {
	personal := schema.MustParseSpec(personalSpec)
	repo := schema.NewRepository()
	for _, s := range repoSpecs {
		repo.MustAdd(schema.MustParseSpec(s))
	}
	ix := labeling.NewIndex(repo)
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.5})
	return personal, repo, ix, cands
}

func TestBuildElements(t *testing.T) {
	_, _, _, cands := fixture("book(title)",
		"lib(book(title),title)")
	elems := BuildElements(cands)
	// repo nodes: lib, book, title, title — book matches bit0, titles bit1.
	byName := map[string]Element{}
	for _, e := range elems {
		byName[e.Node.Name] = e
	}
	if byName["book"].Mask != 1 {
		t.Errorf("book mask = %b", byName["book"].Mask)
	}
	if byName["title"].Mask != 2 {
		t.Errorf("title mask = %b", byName["title"].Mask)
	}
	if byName["book"].BestSim != 1 {
		t.Errorf("book best sim = %v", byName["book"].BestSim)
	}
	// no duplicates
	seen := map[int]bool{}
	for _, e := range elems {
		if seen[e.Node.ID] {
			t.Errorf("element %v duplicated", e.Node)
		}
		seen[e.Node.ID] = true
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	bad := []Config{
		{MaxIterations: 0, Stability: 0.05},
		{MaxIterations: 5, Stability: -1},
		{MaxIterations: 5, Stability: 2},
		{MaxIterations: 5, Stability: 0.05, JoinThreshold: -1},
		{MaxIterations: 5, Stability: 0.05, SimBias: -0.5},
		{MaxIterations: 5, Stability: 0.05, Seeding: SeedEveryKth, SeedStride: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestTreeClustersBaseline(t *testing.T) {
	personal, _, ix, cands := fixture("book(title,author)",
		"lib(book(title,author))",
		"shop(item(price))",
		"store(book(title,author(name)))",
	)
	res := TreeClusters(ix, cands)
	// Tree 1 (shop) has no candidates at 0.5 threshold; trees 0 and 2 do.
	if len(res.Clusters) != 2 {
		t.Fatalf("tree clusters = %d, want 2", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		for _, e := range c.Elements {
			if ix.TreeID(e.Node) != c.TreeID {
				t.Errorf("cluster %d contains node from tree %d", c.ID, ix.TreeID(e.Node))
			}
		}
	}
	useful := res.UsefulClusters(personal.Len())
	if len(useful) != 2 {
		t.Errorf("useful tree clusters = %d, want 2", len(useful))
	}
}

func TestKMeansBasic(t *testing.T) {
	personal, _, ix, cands := fixture("book(title,author)",
		"lib(book(title,author),magazine(title,editor))",
		"store(dept(book(title,author(name)),cd(title,artist)))",
	)
	res, err := KMeans(ix, cands, DefaultConfig())
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if len(res.Clusters) == 0 {
		t.Fatalf("no clusters formed")
	}
	if res.Iterations < 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	full := uint64(1)<<uint(personal.Len()) - 1
	// every cluster must be tree-pure and its medoid must be a member
	for _, c := range res.Clusters {
		medoidIsMember := false
		for _, e := range c.Elements {
			if ix.TreeID(e.Node) != c.TreeID {
				t.Errorf("cluster %d not tree-pure", c.ID)
			}
			if e.Node == c.Medoid {
				medoidIsMember = true
			}
		}
		if !medoidIsMember {
			t.Errorf("cluster %d medoid %v is not a member", c.ID, c.Medoid)
		}
		_ = c.Useful(full) // must not panic
	}
	// at least one useful cluster should exist (both book subtrees qualify)
	if len(res.UsefulClusters(personal.Len())) == 0 {
		t.Errorf("no useful clusters")
	}
}

func TestKMeansElementConservation(t *testing.T) {
	_, _, ix, cands := fixture("book(title,author)",
		"lib(book(title,author),magazine(title,editor))",
		"store(book(title,author))",
	)
	res, err := KMeans(ix, cands, DefaultConfig())
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	inClusters := 0
	seen := map[int]bool{}
	for _, c := range res.Clusters {
		for _, e := range c.Elements {
			if seen[e.Node.ID] {
				t.Fatalf("element %v in two clusters", e.Node)
			}
			seen[e.Node.ID] = true
			inClusters++
		}
	}
	total := len(BuildElements(cands))
	if inClusters+res.Unassigned != total {
		t.Errorf("conservation: %d clustered + %d unassigned != %d total",
			inClusters, res.Unassigned, total)
	}
}

func TestJoinReclusteringReducesClusters(t *testing.T) {
	// A chain of near-identical matches in one tree: without join every
	// MEmin seed survives as its own cluster; with join, neighbours merge.
	_, _, ix, cands := fixture("a(b)",
		"r(a(b),a(b),a(b),a(b),a(b),a(b))")
	noJoin := Config{JoinThreshold: 0, MaxIterations: 10, Stability: 0.05}
	join := Config{JoinThreshold: 4, MaxIterations: 10, Stability: 0.05}
	r1, err := KMeans(ix, cands, noJoin)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(ix, cands, join)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Clusters) >= len(r1.Clusters) {
		t.Errorf("join did not reduce clusters: %d -> %d", len(r1.Clusters), len(r2.Clusters))
	}
	if len(r2.Clusters) < 1 {
		t.Errorf("join removed everything")
	}
}

func TestRemoveReclusteringDropsTinyClusters(t *testing.T) {
	_, _, ix, cands := fixture("a(b)",
		"r(a(b),a(b))", "lone(a)") // tree 1 has a single 'a' element
	cfg := Config{RemoveBelow: 2, MaxIterations: 10, Stability: 0.05}
	res, err := KMeans(ix, cands, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if c.Len() < 2 {
			t.Errorf("cluster %d has %d < 2 elements despite RemoveBelow", c.ID, c.Len())
		}
	}
}

func TestSplitLimitsClusterSize(t *testing.T) {
	// One big tree, all elements match: a single seed would form one huge
	// cluster; SplitAbove must cap the size.
	spec := "r(a(b,b,b,b),a(b,b,b,b),a(b,b,b,b),a(b,b,b,b))"
	_, _, ix, cands := fixture("b", spec)
	cfg := Config{SplitAbove: 5, MaxIterations: 12, Stability: 0.0, Seeding: SeedEveryKth, SeedStride: 1000}
	res, err := KMeans(ix, cands, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After convergence, clusters should respect the cap (splitting happens
	// every iteration; final clusters may be at most SplitAbove after the
	// last split, but the final assignment may regroup - allow 2x slack).
	for _, c := range res.Clusters {
		if c.Len() > 2*cfg.SplitAbove {
			t.Errorf("cluster %d has %d elements, split cap %d ineffective", c.ID, c.Len(), cfg.SplitAbove)
		}
	}
	if len(res.Clusters) < 2 {
		t.Errorf("expected multiple clusters after splitting, got %d", len(res.Clusters))
	}
}

func TestKMeansNoCandidates(t *testing.T) {
	_, _, ix, cands := fixture("zzzz(qqqq)", "a(b)")
	res, err := KMeans(ix, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Errorf("clusters from no candidates: %d", len(res.Clusters))
	}
}

func TestKMeansDeterminism(t *testing.T) {
	_, _, ix, cands := fixture("book(title,author)",
		"lib(book(title,author),magazine(title,editor))",
		"store(dept(book(title,author(name)),cd(title,artist)))",
	)
	cfg := DefaultConfig()
	r1, _ := KMeans(ix, cands, cfg)
	r2, _ := KMeans(ix, cands, cfg)
	if len(r1.Clusters) != len(r2.Clusters) || r1.Iterations != r2.Iterations {
		t.Fatalf("non-deterministic: %d/%d clusters, %d/%d iterations",
			len(r1.Clusters), len(r2.Clusters), r1.Iterations, r2.Iterations)
	}
	for i := range r1.Clusters {
		if r1.Clusters[i].Medoid != r2.Clusters[i].Medoid ||
			r1.Clusters[i].Len() != r2.Clusters[i].Len() {
			t.Errorf("cluster %d differs between runs", i)
		}
	}
}

func TestUsefulMask(t *testing.T) {
	_, _, _, cands := fixture("book(title)", "lib(book(title))")
	elems := BuildElements(cands)
	c := &Cluster{Elements: elems}
	if !c.Useful(fullMask(2)) {
		t.Errorf("cluster with both candidates should be useful; mask=%b", c.Mask())
	}
	// Drop the title element -> no longer useful.
	var bookOnly []Element
	for _, e := range elems {
		if e.Node.Name == "book" {
			bookOnly = append(bookOnly, e)
		}
	}
	c2 := &Cluster{Elements: bookOnly}
	if c2.Useful(fullMask(2)) {
		t.Errorf("book-only cluster should not be useful")
	}
}

// randomFixture builds a random repository plus candidates for properties.
func randomFixture(rng *rand.Rand) (*labeling.Index, *matcher.Candidates) {
	words := []string{"book", "title", "author", "name", "addr", "email", "isbn", "page"}
	repo := schema.NewRepository()
	nt := 1 + rng.Intn(5)
	for t := 0; t < nt; t++ {
		b := schema.NewBuilder("t")
		nodes := []*schema.Node{b.Root(words[rng.Intn(len(words))])}
		n := 2 + rng.Intn(30)
		for i := 1; i < n; i++ {
			p := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, b.Element(p, words[rng.Intn(len(words))]))
		}
		repo.MustAdd(b.MustTree())
	}
	ix := labeling.NewIndex(repo)
	personal := schema.MustParseSpec("book(title,author)")
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.5})
	return ix, cands
}

// Property: clusters are disjoint, tree-pure, contain their medoid, and
// element conservation holds, across random repositories and configs.
func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed int64, jt, rb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ix, cands := randomFixture(rng)
		cfg := Config{
			JoinThreshold: int(jt % 5),
			RemoveBelow:   int(rb % 3),
			MaxIterations: 8,
			Stability:     0.05,
		}
		res, err := KMeans(ix, cands, cfg)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		count := 0
		for _, c := range res.Clusters {
			medoidMember := false
			for _, e := range c.Elements {
				if seen[e.Node.ID] {
					return false
				}
				seen[e.Node.ID] = true
				count++
				if ix.TreeID(e.Node) != c.TreeID {
					return false
				}
				if e.Node == c.Medoid {
					medoidMember = true
				}
			}
			if !medoidMember {
				return false
			}
			if cfg.RemoveBelow > 0 && c.Len() < cfg.RemoveBelow {
				return false
			}
		}
		return count+res.Unassigned == len(BuildElements(cands))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: larger join thresholds never increase the number of clusters
// (with the other knobs fixed and a stable seeding).
func TestJoinThresholdMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix, cands := randomFixture(rng)
		prev := -1
		for jt := 0; jt <= 4; jt += 2 {
			cfg := Config{JoinThreshold: jt, MaxIterations: 1, Stability: 0}
			res, err := KMeans(ix, cands, cfg)
			if err != nil {
				return false
			}
			if prev >= 0 && len(res.Clusters) > prev {
				return false
			}
			prev = len(res.Clusters)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
