// Package cluster implements the paper's contribution: the clustering step
// inserted between element matching and mapping generation (Fig. 3, Alg. 1).
//
// Mapping elements (repository nodes that are a candidate for at least one
// personal-schema node) are partitioned into clusters with an adapted
// k-means algorithm:
//
//   - centroids are medoids — actual mapping elements at the cluster's
//     center of weight;
//   - the distance measure is the tree distance (path length), computed in
//     O(1) via the labeling package;
//   - centroids are seeded from MEmin, the smallest candidate set, so that
//     every initial centroid marks a region that can possibly deliver a
//     useful cluster;
//   - a reclustering step runs inside each iteration: join merges clusters
//     whose medoids are within a distance threshold, remove deletes tiny
//     clusters (their elements are free to join neighbours in the next
//     iteration), and split (an extension, Sec. 4 "huge clusters") breaks
//     up oversized clusters;
//   - the algorithm terminates when fewer than a stability fraction of
//     elements switch clusters and the cluster count is stable, or after
//     MaxIterations.
//
// Agglomerative single-linkage clustering (Agglomerative) is provided as an
// ablation alternative, and TreeClusters is the non-clustered baseline in
// which every repository tree forms one cluster. Because the tree distance
// between nodes of different trees is infinite, every cluster — under any
// of the three algorithms — contains elements of a single repository tree;
// the serve package's shard partitioning relies on this invariant.
//
// # Concurrency
//
// KMeans, Agglomerative and TreeClusters are pure functions of their
// inputs: they read the immutable labelling index and candidate sets and
// return freshly allocated Result values, so any number of clustering runs
// may execute concurrently (the serve worker pools do exactly that). The
// returned clusters are not synchronized; treat a Result as owned by the
// goroutine that produced it or as read-only once shared.
package cluster
