package dtd

import (
	"math/rand"
	"strings"
	"testing"
)

// Fuzz-style robustness: ParseString must return errors, never panic, on
// arbitrary input, and any tree it accepts must validate.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	alphabet := "<>!ELMNT AIS()|,*+?#PCDAabc\"'-%;&"
	valid := `<!ELEMENT a (b, c)> <!ELEMENT b (#PCDATA)> <!ATTLIST a x CDATA #IMPLIED>`
	for i := 0; i < 2000; i++ {
		var src string
		if rng.Intn(2) == 0 {
			src = randBytes(rng, alphabet, rng.Intn(60))
		} else {
			// mutate the valid document
			src = valid[:rng.Intn(len(valid)+1)]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseString(%q) panicked: %v", src, r)
				}
			}()
			trees, err := ParseString(src)
			if err == nil {
				for _, tr := range trees {
					if vErr := tr.Validate(); vErr != nil {
						t.Fatalf("accepted invalid tree from %q: %v", src, vErr)
					}
				}
			}
		}()
	}
}

func randBytes(rng *rand.Rand, alphabet string, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}
