// Package dtd parses XML Document Type Definitions into schema trees — the
// second repository ingestion path (the paper's harvested collection mixed
// "non-recursive DTDs and XML schemas").
//
// Supported declarations:
//
//   - <!ELEMENT name content> — content models with sequences (a, b),
//     choices (a | b), occurrence markers (* + ?), #PCDATA, EMPTY and ANY.
//     Occurrence markers are ignored (schema trees model structure, not
//     cardinality); a child mentioned several times in one content model
//     contributes one child per mention.
//   - <!ATTLIST name attr type default ...> — each attribute becomes an
//     attribute leaf; the DTD attribute type (CDATA, ID, NMTOKEN, ...) is
//     recorded as the node's datatype.
//   - comments and processing instructions are skipped; <!ENTITY ...> and
//     <!NOTATION ...> declarations are skipped.
//
// Every element that is never referenced inside another element's content
// model becomes a tree root, so one DTD may produce several trees (the
// paper: "one schema can have multiple roots, each represented with one
// tree"). Recursive content models are rejected — the paper's collection
// was explicitly non-recursive.
package dtd

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode"

	"bellflower/internal/schema"
)

// MaxDepth bounds tree expansion depth.
const MaxDepth = 64

// Parse reads a DTD document and returns its trees.
func Parse(r io.Reader) ([]*schema.Tree, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dtd: %w", err)
	}
	return ParseString(string(src))
}

// ParseString parses a DTD from a string.
func ParseString(src string) ([]*schema.Tree, error) {
	d := &doc{
		children: map[string][]string{},
		attrs:    map[string][]attr{},
	}
	if err := d.scan(src); err != nil {
		return nil, err
	}
	if len(d.order) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations found")
	}
	// Roots: declared elements never referenced as children.
	referenced := map[string]bool{}
	for _, kids := range d.children {
		for _, k := range kids {
			referenced[k] = true
		}
	}
	var rootNames []string
	for _, name := range d.order {
		if !referenced[name] {
			rootNames = append(rootNames, name)
		}
	}
	if len(rootNames) == 0 {
		// Everything is referenced — necessarily cyclic.
		return nil, fmt.Errorf("dtd: recursive content models (no root element)")
	}
	sort.Strings(rootNames)
	var trees []*schema.Tree
	for _, rn := range rootNames {
		b := schema.NewBuilder(rn)
		root := b.Root(rn)
		if err := d.expand(b, root, rn, 0, map[string]bool{rn: true}); err != nil {
			return nil, err
		}
		t, err := b.Tree()
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
	return trees, nil
}

type attr struct{ name, typ string }

type doc struct {
	children map[string][]string
	attrs    map[string][]attr
	order    []string // declaration order of elements
}

func (d *doc) expand(b *schema.Builder, node *schema.Node, name string, depth int, active map[string]bool) error {
	if depth > MaxDepth {
		return fmt.Errorf("dtd: element %q exceeds maximum depth %d", name, MaxDepth)
	}
	for _, a := range d.attrs[name] {
		b.TypedAttribute(node, a.name, a.typ)
	}
	for _, childName := range d.children[name] {
		if active[childName] {
			return fmt.Errorf("dtd: recursive content model at %q", childName)
		}
		child := b.Element(node, childName)
		if _, declared := d.children[childName]; declared || len(d.attrs[childName]) > 0 {
			active[childName] = true
			if err := d.expand(b, child, childName, depth+1, active); err != nil {
				return err
			}
			delete(active, childName)
		}
	}
	return nil
}

// scan tokenizes the DTD source into declarations.
func (d *doc) scan(src string) error {
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				return fmt.Errorf("dtd: unterminated comment at offset %d", i)
			}
			i += 4 + end + 3
		case strings.HasPrefix(src[i:], "<?"):
			end := strings.Index(src[i:], "?>")
			if end < 0 {
				return fmt.Errorf("dtd: unterminated processing instruction at offset %d", i)
			}
			i += end + 2
		case strings.HasPrefix(src[i:], "<!"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				return fmt.Errorf("dtd: unterminated declaration at offset %d", i)
			}
			decl := src[i+2 : i+end]
			if err := d.declaration(decl); err != nil {
				return err
			}
			i += end + 1
		default:
			return fmt.Errorf("dtd: unexpected character %q at offset %d", c, i)
		}
	}
	return nil
}

func (d *doc) declaration(decl string) error {
	fields := strings.Fields(decl)
	if len(fields) == 0 {
		return fmt.Errorf("dtd: empty declaration")
	}
	switch fields[0] {
	case "ELEMENT":
		return d.elementDecl(decl)
	case "ATTLIST":
		return d.attlistDecl(decl)
	case "ENTITY", "NOTATION", "DOCTYPE":
		return nil // skipped
	default:
		return fmt.Errorf("dtd: unknown declaration %q", fields[0])
	}
}

// elementDecl parses "ELEMENT name content".
func (d *doc) elementDecl(decl string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(decl, "ELEMENT"))
	sp := strings.IndexFunc(rest, unicode.IsSpace)
	if sp < 0 {
		return fmt.Errorf("dtd: ELEMENT declaration without content model: %q", decl)
	}
	name := rest[:sp]
	if !validName(name) {
		return fmt.Errorf("dtd: invalid element name %q", name)
	}
	content := strings.TrimSpace(rest[sp:])
	if _, dup := d.children[name]; dup {
		return fmt.Errorf("dtd: duplicate element declaration %q", name)
	}
	kids, err := contentChildren(content)
	if err != nil {
		return fmt.Errorf("dtd: element %q: %w", name, err)
	}
	d.children[name] = kids
	d.order = append(d.order, name)
	return nil
}

// contentChildren extracts the child element names from a content model,
// in order of first appearance of each mention. "(a, (b | c)*, a)" yields
// [a b c a].
func contentChildren(content string) ([]string, error) {
	switch content {
	case "EMPTY", "ANY":
		return nil, nil
	}
	if !strings.HasPrefix(content, "(") {
		return nil, fmt.Errorf("invalid content model %q", content)
	}
	var kids []string
	cur := strings.Builder{}
	depth := 0
	flush := func() {
		tok := cur.String()
		cur.Reset()
		if tok == "" || tok == "#PCDATA" {
			return
		}
		kids = append(kids, tok)
	}
	for _, r := range content {
		switch {
		case r == '(':
			depth++
			flush()
		case r == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", content)
			}
			flush()
		case r == ',' || r == '|' || r == '*' || r == '+' || r == '?' || unicode.IsSpace(r):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses in %q", content)
	}
	return kids, nil
}

// attlistDecl parses "ATTLIST element attr type default [attr type default ...]".
// Tokenization is paren- and quote-aware: an enumeration type "(a | b)" and
// a quoted default value are single tokens.
func (d *doc) attlistDecl(decl string) error {
	fields, err := attlistTokens(decl)
	if err != nil {
		return err
	}
	if len(fields) < 2 {
		return fmt.Errorf("dtd: ATTLIST without element name")
	}
	elem := fields[1]
	rest := fields[2:]
	for len(rest) > 0 {
		if len(rest) < 3 {
			return fmt.Errorf("dtd: incomplete ATTLIST entry for %q", elem)
		}
		name, typ := rest[0], rest[1]
		if !validName(name) {
			return fmt.Errorf("dtd: invalid attribute name %q", name)
		}
		// The type may be an enumeration "(a|b|c)"; record it as "enum".
		if strings.HasPrefix(typ, "(") {
			typ = "enum"
		}
		d.attrs[elem] = append(d.attrs[elem], attr{name: name, typ: strings.ToLower(typ)})
		// Default: #REQUIRED / #IMPLIED, or #FIXED "v", or a literal "v".
		consumed := 3
		if rest[2] == "#FIXED" {
			if len(rest) < 4 {
				return fmt.Errorf("dtd: #FIXED without value for %q", name)
			}
			consumed = 4
		}
		rest = rest[consumed:]
	}
	return nil
}

// attlistTokens splits an ATTLIST declaration into tokens, keeping
// parenthesized enumerations and quoted literals whole.
func attlistTokens(decl string) ([]string, error) {
	var out []string
	i := 0
	for i < len(decl) {
		c := decl[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(':
			depth := 0
			j := i
			for ; j < len(decl); j++ {
				if decl[j] == '(' {
					depth++
				} else if decl[j] == ')' {
					depth--
					if depth == 0 {
						j++
						break
					}
				}
			}
			if depth != 0 {
				return nil, fmt.Errorf("dtd: unbalanced parentheses in ATTLIST: %q", decl)
			}
			out = append(out, decl[i:j])
			i = j
		case c == '"' || c == '\'':
			j := strings.IndexByte(decl[i+1:], c)
			if j < 0 {
				return nil, fmt.Errorf("dtd: unterminated literal in ATTLIST: %q", decl)
			}
			out = append(out, decl[i:i+j+2])
			i += j + 2
		default:
			j := i
			for j < len(decl) && !unicode.IsSpace(rune(decl[j])) && decl[j] != '(' {
				j++
			}
			out = append(out, decl[i:j])
			i = j
		}
	}
	return out, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || r == '_':
		case i > 0 && (unicode.IsDigit(r) || r == '-' || r == '.' || r == ':'):
		default:
			return false
		}
	}
	return true
}
