package dtd

import (
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	trees, err := ParseString(`
<!ELEMENT book (title, author+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (first, last?)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ATTLIST book isbn CDATA #REQUIRED>
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	tr := trees[0]
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tr.String(); got != "book(isbn@,title,author(first,last))" {
		t.Errorf("tree = %q", got)
	}
	if got := tr.Find("isbn").Type; got != "cdata" {
		t.Errorf("isbn type = %q", got)
	}
}

func TestParseMultipleRoots(t *testing.T) {
	trees, err := ParseString(`
<!ELEMENT order (item*)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT invoice (total)>
<!ELEMENT total (#PCDATA)>
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2 roots", len(trees))
	}
	// roots sorted alphabetically
	if trees[0].Root().Name != "invoice" || trees[1].Root().Name != "order" {
		t.Errorf("roots = %s, %s", trees[0].Root().Name, trees[1].Root().Name)
	}
}

func TestParseChoiceAndNesting(t *testing.T) {
	trees, err := ParseString(`
<!ELEMENT doc ((head | meta), body)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT meta (#PCDATA)>
<!ELEMENT body (p)*>
<!ELEMENT p (#PCDATA)>
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := trees[0].String()
	if got != "doc(head,meta,body(p))" {
		t.Errorf("tree = %q", got)
	}
}

func TestParseRepeatedMention(t *testing.T) {
	trees, err := ParseString(`
<!ELEMENT pair (point, point)>
<!ELEMENT point (#PCDATA)>
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := trees[0].String(); got != "pair(point,point)" {
		t.Errorf("tree = %q", got)
	}
}

func TestParseUndeclaredChildIsLeaf(t *testing.T) {
	trees, err := ParseString(`<!ELEMENT a (b, c)>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := trees[0].String(); got != "a(b,c)" {
		t.Errorf("tree = %q", got)
	}
}

func TestParseAttlistVariants(t *testing.T) {
	trees, err := ParseString(`
<!ELEMENT e (#PCDATA)>
<!ATTLIST e
  id    ID            #REQUIRED
  kind  (big | small) "big"
  note  CDATA         #IMPLIED
  ver   CDATA         #FIXED "1.0">
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tr := trees[0]
	if tr.Len() != 5 {
		t.Fatalf("tree = %q", tr.String())
	}
	if got := tr.Find("kind").Type; got != "enum" {
		t.Errorf("kind type = %q", got)
	}
	if got := tr.Find("id").Type; got != "id" {
		t.Errorf("id type = %q", got)
	}
}

func TestParseCommentsAndEntities(t *testing.T) {
	trees, err := ParseString(`
<!-- library DTD -->
<!ENTITY % common "title">
<?pi target?>
<!ELEMENT lib (book)>
<!-- another comment -->
<!ELEMENT book (title)>
<!ELEMENT title (#PCDATA)>
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := trees[0].String(); got != "lib(book(title))" {
		t.Errorf("tree = %q", got)
	}
}

func TestParseEmptyAndAny(t *testing.T) {
	trees, err := ParseString(`
<!ELEMENT root (hr, blob)>
<!ELEMENT hr EMPTY>
<!ELEMENT blob ANY>
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := trees[0].String(); got != "root(hr,blob)" {
		t.Errorf("tree = %q", got)
	}
}

func TestParseRecursionRejected(t *testing.T) {
	cases := []string{
		// direct recursion
		`<!ELEMENT a (a)>`,
		// mutual recursion with a root
		`<!ELEMENT r (a)> <!ELEMENT a (b)> <!ELEMENT b (a)>`,
		// fully cyclic: no root at all
		`<!ELEMENT a (b)> <!ELEMENT b (a)>`,
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("recursion accepted: %q", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           ``,
		"garbage":         `hello`,
		"unclosed decl":   `<!ELEMENT a (b)`,
		"unclosed comm":   `<!-- nope`,
		"dup element":     `<!ELEMENT a (b)> <!ELEMENT a (c)>`,
		"no content":      `<!ELEMENT a>`,
		"bad content":     `<!ELEMENT a b>`,
		"bad parens":      `<!ELEMENT a (b))>`,
		"bad name":        `<!ELEMENT 1a (b)>`,
		"short attlist":   `<!ELEMENT a (#PCDATA)> <!ATTLIST a x>`,
		"unknown decl":    `<!WHATEVER a>`,
		"fixed w/o value": `<!ELEMENT a (#PCDATA)> <!ATTLIST a x CDATA #FIXED>`,
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

func TestParseReader(t *testing.T) {
	trees, err := Parse(strings.NewReader(`<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if trees[0].String() != "a(b)" {
		t.Errorf("tree = %q", trees[0])
	}
}

func TestSharedSubtreeExpandsInBothRoots(t *testing.T) {
	// 'addr' is shared by two parents within one tree structure.
	trees, err := ParseString(`
<!ELEMENT org (person, office)>
<!ELEMENT person (addr)>
<!ELEMENT office (addr)>
<!ELEMENT addr (street, city)>
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := trees[0].String()
	if got != "org(person(addr(street,city)),office(addr(street,city)))" {
		t.Errorf("tree = %q", got)
	}
}
