package pipeline

import (
	"testing"

	"bellflower/internal/matcher"
	"bellflower/internal/schema"
)

func TestTwoPhaseStructureRescoring(t *testing.T) {
	// Two repository trees: one embeds title/author under a book-like
	// container (structurally faithful), the other scatters identically
	// named nodes under unrelated containers. Pure name matching ties
	// them; structural rescoring must rank the faithful one first.
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("lib(book(title,author))"))
	repo.MustAdd(schema.MustParseSpec("misc(title,junk(author))"))
	r := NewRunner(repo)
	personal := schema.MustParseSpec("book(title,author)")

	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.4
	opts.MinSim = 0.4
	opts.StructureMatcher = matcher.PathContextMatcher{}
	opts.StructureWeight = 0.5

	rep, err := r.Run(personal, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Mappings) == 0 {
		t.Fatalf("no mappings")
	}
	best := rep.Mappings[0]
	if best.Images[0].Tree().ID != 0 {
		t.Errorf("structural rescoring should prefer tree 0, best mapping in tree %d (Δ=%v)",
			best.Images[0].Tree().ID, best.Score.Delta)
	}

	// Without the structure matcher, confirm both trees yield mappings so
	// the test actually exercises a tie-break.
	plain := DefaultOptions()
	plain.Variant = VariantTree
	plain.Threshold = 0.4
	plain.MinSim = 0.4
	plainRep, err := r.Run(personal, plain)
	if err != nil {
		t.Fatal(err)
	}
	trees := map[int]bool{}
	for _, m := range plainRep.Mappings {
		trees[m.Images[0].Tree().ID] = true
	}
	if !trees[0] || !trees[1] {
		t.Skipf("fixture no longer ambiguous: trees %v", trees)
	}
}

func TestTwoPhaseDefaultWeight(t *testing.T) {
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("lib(book(title,author))"))
	r := NewRunner(repo)
	personal := schema.MustParseSpec("book(title,author)")
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.3
	opts.MinSim = 0.4
	opts.StructureMatcher = matcher.LeafContextMatcher{}
	// StructureWeight left at 0 -> defaults to 0.5 (must not zero out the
	// structural contribution or crash).
	rep, err := r.Run(personal, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Mappings) == 0 {
		t.Errorf("no mappings with default structure weight")
	}
}

func TestParallelGenerationDeterminism(t *testing.T) {
	r := NewRunner(smallRepo())
	personal := personBooks()
	seq := DefaultOptions()
	seq.MinSim = 0.3
	seq.Variant = VariantMedium
	seqRep, err := r.Run(personal, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := seq
	par.Parallelism = 8
	parRep, err := r.Run(personal, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRep.Mappings) != len(parRep.Mappings) {
		t.Fatalf("parallel found %d mappings, sequential %d",
			len(parRep.Mappings), len(seqRep.Mappings))
	}
	for i := range seqRep.Mappings {
		a, b := seqRep.Mappings[i], parRep.Mappings[i]
		if a.Score.Delta != b.Score.Delta {
			t.Fatalf("rank %d: Δ %v vs %v", i, a.Score.Delta, b.Score.Delta)
		}
		for j := range a.Images {
			if a.Images[j] != b.Images[j] {
				t.Fatalf("rank %d image %d differs", i, j)
			}
		}
	}
	if seqRep.Counters.PartialMappings != parRep.Counters.PartialMappings {
		t.Errorf("counters differ: %d vs %d",
			seqRep.Counters.PartialMappings, parRep.Counters.PartialMappings)
	}
	if seqRep.FirstGoodAfter != parRep.FirstGoodAfter {
		t.Errorf("FirstGoodAfter differs: %d vs %d", seqRep.FirstGoodAfter, parRep.FirstGoodAfter)
	}
}

func TestAdaptiveTopN(t *testing.T) {
	r := NewRunner(smallRepo())
	personal := personBooks()
	trunc := DefaultOptions()
	trunc.MinSim = 0.3
	trunc.Variant = VariantMedium
	trunc.TopN = 5
	truncRep, err := r.Run(personal, trunc)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := trunc
	adaptive.AdaptiveTopN = true
	adaptiveRep, err := r.Run(personal, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptiveRep.Mappings) != len(truncRep.Mappings) {
		t.Fatalf("adaptive found %d, truncation %d", len(adaptiveRep.Mappings), len(truncRep.Mappings))
	}
	for i := range truncRep.Mappings {
		if truncRep.Mappings[i].Score.Delta != adaptiveRep.Mappings[i].Score.Delta {
			t.Errorf("rank %d: Δ %v vs %v", i,
				truncRep.Mappings[i].Score.Delta, adaptiveRep.Mappings[i].Score.Delta)
		}
	}
	if adaptiveRep.Counters.PartialMappings > truncRep.Counters.PartialMappings {
		t.Errorf("adaptive top-N did more work: %d vs %d partials",
			adaptiveRep.Counters.PartialMappings, truncRep.Counters.PartialMappings)
	}
}

// The adaptive top-N path composes with Parallelism: any worker count
// returns the same mappings in the same order as the sequential adaptive
// run (the engine's shared-bound determinism carried through the
// pipeline).
func TestAdaptiveTopNParallel(t *testing.T) {
	r := NewRunner(smallRepo())
	personal := personBooks()
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Variant = VariantMedium
	opts.TopN = 5
	opts.AdaptiveTopN = true
	seqRep, err := r.Run(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRep.Mappings) == 0 {
		t.Fatal("fixture found no mappings")
	}
	for _, par := range []int{2, 4, 8} {
		popts := opts
		popts.Parallelism = par
		parRep, err := r.Run(personal, popts)
		if err != nil {
			t.Fatal(err)
		}
		if len(parRep.Mappings) != len(seqRep.Mappings) {
			t.Fatalf("parallelism %d: %d mappings, want %d", par, len(parRep.Mappings), len(seqRep.Mappings))
		}
		for i := range seqRep.Mappings {
			a, b := seqRep.Mappings[i], parRep.Mappings[i]
			if a.Score != b.Score || a.ClusterID != b.ClusterID {
				t.Fatalf("parallelism %d rank %d: %+v vs %+v", par, i, a.Score, b.Score)
			}
			for j := range a.Images {
				if a.Images[j] != b.Images[j] {
					t.Fatalf("parallelism %d rank %d image %d differs", par, i, j)
				}
			}
		}
		if parRep.Counters.SearchSpace != seqRep.Counters.SearchSpace ||
			parRep.Counters.UsefulClusters != seqRep.Counters.UsefulClusters {
			t.Errorf("parallelism %d: exact counters differ: %+v vs %+v",
				par, parRep.Counters, seqRep.Counters)
		}
	}
}
