package pipeline

import (
	"context"
	"errors"
	"testing"

	"bellflower/internal/schema"
)

func ctxTestRepo() *schema.Repository {
	repo := schema.NewRepository()
	for _, spec := range []string{
		"lib(address,book(authorName,data(title),shelf))",
		"store(book(title,author,isbn@),order(id,customer(name,email)))",
		"catalog(item(name,price),publisher(name,address))",
		"school(student(name,email),course(title,teacher(name)))",
	} {
		repo.MustAdd(schema.MustParseSpec(spec))
	}
	return repo
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	r := NewRunner(ctxTestRepo())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RunContext(ctx, schema.MustParseSpec("book(title,author)"), DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancellingMatcher cancels the run's context from inside element matching,
// so the stage boundary after stage 1 must abort the run — a deterministic
// probe of mid-run cancellation.
type cancellingMatcher struct {
	cancel context.CancelFunc
}

func (m cancellingMatcher) Name() string { return "cancelling" }

func (m cancellingMatcher) Similarity(p, r *schema.Node) float64 {
	m.cancel()
	return 1
}

func TestRunContextCancelledMidRun(t *testing.T) {
	r := NewRunner(ctxTestRepo())
	for _, parallelism := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := DefaultOptions()
		opts.Matcher = cancellingMatcher{cancel: cancel}
		opts.Parallelism = parallelism
		rep, err := r.RunContext(ctx, schema.MustParseSpec("book(title,author)"), opts)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
		}
		if rep != nil {
			t.Errorf("parallelism %d: got a report from a cancelled run", parallelism)
		}
		cancel()
	}
}

func TestRunMatchesRunContextBackground(t *testing.T) {
	r := NewRunner(ctxTestRepo())
	personal := schema.MustParseSpec("book(title,author)")
	opts := DefaultOptions()
	opts.Threshold = 0.5

	viaRun, err := r.Run(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := r.RunContext(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRun.Mappings) != len(viaCtx.Mappings) {
		t.Fatalf("Run found %d mappings, RunContext %d", len(viaRun.Mappings), len(viaCtx.Mappings))
	}
	for i := range viaRun.Mappings {
		if viaRun.Mappings[i].Score.Delta != viaCtx.Mappings[i].Score.Delta {
			t.Fatalf("mapping %d scores differ", i)
		}
	}
}
