package pipeline

import (
	"context"
	"testing"

	"bellflower/internal/cluster"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/repogen"
	"bellflower/internal/schema"
)

func smallRepo() *schema.Repository {
	cfg := repogen.DefaultConfig()
	cfg.TargetNodes = 2500
	cfg.Seed = 42
	return repogen.MustGenerate(cfg)
}

// personBooks is the paper's canonical personal schema: three nodes named
// name, address, email in the shape of Fig. 1's s.
func personBooks() *schema.Tree {
	return schema.MustParseSpec("address(name,email)")
}

func TestVariantString(t *testing.T) {
	want := map[Variant]string{
		VariantTree: "tree", VariantSmall: "small",
		VariantMedium: "medium", VariantLarge: "large",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestVariantClusterConfig(t *testing.T) {
	if _, ok := VariantTree.ClusterConfig(); ok {
		t.Errorf("tree variant should not have a cluster config")
	}
	wantJoin := map[Variant]int{VariantSmall: 2, VariantMedium: 3, VariantLarge: 4}
	for v, j := range wantJoin {
		cfg, ok := v.ClusterConfig()
		if !ok || cfg.JoinThreshold != j {
			t.Errorf("%v cluster config = %+v ok=%v, want join %d", v, cfg, ok, j)
		}
	}
}

func TestRunTreeBaseline(t *testing.T) {
	r := NewRunner(smallRepo())
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Variant = VariantTree
	rep, err := r.Run(personBooks(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.MappingElements == 0 {
		t.Fatalf("no mapping elements")
	}
	if rep.Clusters == 0 || rep.UsefulClusters == 0 {
		t.Fatalf("clusters=%d useful=%d", rep.Clusters, rep.UsefulClusters)
	}
	if rep.Iterations != 0 {
		t.Errorf("tree baseline should not iterate, got %d", rep.Iterations)
	}
	if len(rep.Mappings) == 0 {
		t.Fatalf("no mappings found")
	}
	for i := 1; i < len(rep.Mappings); i++ {
		if rep.Mappings[i].Score.Delta > rep.Mappings[i-1].Score.Delta {
			t.Errorf("ranking violated at %d", i)
		}
	}
	for _, m := range rep.Mappings {
		if m.Score.Delta < opts.Threshold {
			t.Errorf("mapping below threshold: %v", m.Score.Delta)
		}
	}
}

func TestRunClusteredReducesSearchSpace(t *testing.T) {
	r := NewRunner(smallRepo())
	base := DefaultOptions()
	base.MinSim = 0.3
	base.Variant = VariantTree
	treeRep, err := r.Run(personBooks(), base)
	if err != nil {
		t.Fatal(err)
	}
	med := DefaultOptions()
	med.MinSim = 0.3
	med.Variant = VariantMedium
	medRep, err := r.Run(personBooks(), med)
	if err != nil {
		t.Fatal(err)
	}
	if medRep.Counters.SearchSpace >= treeRep.Counters.SearchSpace {
		t.Errorf("clustering did not reduce search space: %v >= %v",
			medRep.Counters.SearchSpace, treeRep.Counters.SearchSpace)
	}
	if medRep.Counters.PartialMappings >= treeRep.Counters.PartialMappings {
		t.Errorf("clustering did not reduce partial mappings: %d >= %d",
			medRep.Counters.PartialMappings, treeRep.Counters.PartialMappings)
	}
	// Clustered mappings are a subset in count.
	if len(medRep.Mappings) > len(treeRep.Mappings) {
		t.Errorf("clustered found more mappings (%d) than exhaustive (%d)",
			len(medRep.Mappings), len(treeRep.Mappings))
	}
	if rep := medRep; rep.Iterations == 0 {
		t.Errorf("clustered run should iterate")
	}
}

func TestClusteredMappingsAreSubsetOfBaseline(t *testing.T) {
	r := NewRunner(smallRepo())
	key := func(m mapgen.Mapping) string {
		out := ""
		for _, img := range m.Images {
			out += "," + img.String()
		}
		return out
	}
	base := DefaultOptions()
	base.MinSim = 0.3
	base.Variant = VariantTree
	treeRep, err := r.Run(personBooks(), base)
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]bool{}
	for _, m := range treeRep.Mappings {
		baseline[key(m)] = true
	}
	for _, v := range []Variant{VariantSmall, VariantMedium, VariantLarge} {
		opts := DefaultOptions()
		opts.MinSim = 0.3
		opts.Variant = v
		rep, err := r.Run(personBooks(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range rep.Mappings {
			if !baseline[key(m)] {
				t.Errorf("%v found mapping not in baseline: %s (Δ=%v)", v, key(m), m.Score.Delta)
			}
		}
	}
}

func TestRunTopN(t *testing.T) {
	r := NewRunner(smallRepo())
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Variant = VariantTree
	opts.TopN = 3
	rep, err := r.Run(personBooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mappings) > 3 {
		t.Errorf("TopN=3 returned %d mappings", len(rep.Mappings))
	}
}

func TestRunValidation(t *testing.T) {
	r := NewRunner(smallRepo())
	bad := DefaultOptions()
	bad.Threshold = 1.5
	if _, err := r.Run(personBooks(), bad); err == nil {
		t.Errorf("bad threshold accepted")
	}
	bad2 := DefaultOptions()
	bad2.Objective.Alpha = 7
	if _, err := r.Run(personBooks(), bad2); err == nil {
		t.Errorf("bad alpha accepted")
	}
}

func TestRunWithCustomMatcherAndConfig(t *testing.T) {
	r := NewRunner(smallRepo())
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Matcher = matcher.NewCombined(
		matcher.Weighted{Matcher: matcher.NameMatcher{TokenAware: true}, Weight: 3},
		matcher.Weighted{Matcher: matcher.DefaultSynonyms(), Weight: 1},
	)
	cc := cluster.DefaultConfig()
	cc.JoinThreshold = 5
	opts.ClusterConfig = &cc
	rep, err := r.Run(personBooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MappingElements == 0 {
		t.Errorf("custom matcher found nothing")
	}
}

func TestRunIncludePartials(t *testing.T) {
	// Personal schema with a node that matches nowhere: complete mappings
	// are impossible but partials should surface.
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("contact(name,address)"))
	r := NewRunner(repo)
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Variant = VariantTree
	opts.Threshold = 0.2
	opts.IncludePartials = true
	rep, err := r.Run(schema.MustParseSpec("person(name,address,zzzqqy)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mappings) != 0 {
		t.Errorf("impossible complete mappings found: %d", len(rep.Mappings))
	}
	if len(rep.Partials) == 0 {
		t.Errorf("no partial mappings surfaced")
	}
	for i := 1; i < len(rep.Partials); i++ {
		if rep.Partials[i].Score.Delta > rep.Partials[i-1].Score.Delta {
			t.Errorf("partials not ranked at %d", i)
		}
	}
}

func TestClusterQualityOrdering(t *testing.T) {
	repo := schema.NewRepository()
	// Tree 0: perfect match; tree 1: noisy match.
	repo.MustAdd(schema.MustParseSpec("person(name,address,email)"))
	repo.MustAdd(schema.MustParseSpec("persn(nam,adress,emall)"))
	r := NewRunner(repo)
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Variant = VariantTree
	opts.Threshold = 0.5
	opts.MinSim = 0.4
	opts.OrderClusters = true
	rep, err := r.Run(personBooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstGoodAfter != 1 {
		t.Errorf("with quality ordering the first cluster should yield a mapping, got FirstGoodAfter=%d", rep.FirstGoodAfter)
	}
	if len(rep.Mappings) == 0 || rep.Mappings[0].Images[0].Tree().ID != 0 {
		t.Errorf("best mapping should come from the perfect tree")
	}
}

func TestClusterQualityValue(t *testing.T) {
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("person(name,address,email)"))
	r := NewRunner(repo)
	personal := personBooks()
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.5})
	cl := cluster.TreeClusters(r.Index(), cands).Clusters[0]
	q := ClusterQuality(cl, cands)
	if q < 0.9 {
		t.Errorf("perfect-match cluster quality = %v, want ~1", q)
	}
}

func TestExhaustiveAlgorithmOption(t *testing.T) {
	r := NewRunner(smallRepo())
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Variant = VariantTree
	bb, err := r.Run(personBooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Algorithm = mapgen.Exhaustive
	ex, err := r.Run(personBooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb.Mappings) != len(ex.Mappings) {
		t.Errorf("B&B (%d) and exhaustive (%d) disagree", len(bb.Mappings), len(ex.Mappings))
	}
	if bb.Counters.PartialMappings >= ex.Counters.PartialMappings {
		t.Errorf("B&B should generate fewer partials: %d vs %d",
			bb.Counters.PartialMappings, ex.Counters.PartialMappings)
	}
}

func TestReportDerived(t *testing.T) {
	r := NewRunner(smallRepo())
	opts := DefaultOptions()
	opts.MinSim = 0.3
	rep, err := r.Run(personBooks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.TotalTime(); got != rep.MatchTime+rep.ClusterTime+rep.GenTime {
		t.Errorf("TotalTime = %v", got)
	}
	ds := rep.Deltas()
	if len(ds) != len(rep.Mappings) {
		t.Errorf("Deltas length = %d", len(ds))
	}
	for i, d := range ds {
		if d != rep.Mappings[i].Score.Delta {
			t.Errorf("Deltas[%d] mismatch", i)
		}
	}
	var _ = objective.DefaultParams()
}

// TestRunWithCandidatesMatchesRunContext: handing RunContext's own stage-1
// output to RunWithCandidates must reproduce the full run exactly (the
// serving pre-pass depends on this equivalence).
func TestRunWithCandidatesMatchesRunContext(t *testing.T) {
	repo := smallRepo()
	r := NewRunner(repo)
	personal := personBooks()
	for _, v := range []Variant{VariantTree, VariantMedium} {
		opts := DefaultOptions()
		opts.Variant = v
		opts.Threshold = 0.6
		opts.MinSim = 0.3

		want, err := r.Run(personal, opts)
		if err != nil {
			t.Fatal(err)
		}
		cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{},
			matcher.Config{MinSim: opts.MinSim})
		got, err := r.RunWithCandidates(context.Background(), personal, cands, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.MappingElements != want.MappingElements {
			t.Errorf("%v: mapping elements %d, want %d", v, got.MappingElements, want.MappingElements)
		}
		if got.Clusters != want.Clusters || got.UsefulClusters != want.UsefulClusters {
			t.Errorf("%v: clusters %d/%d, want %d/%d", v,
				got.Clusters, got.UsefulClusters, want.Clusters, want.UsefulClusters)
		}
		if len(got.Mappings) != len(want.Mappings) {
			t.Fatalf("%v: %d mappings, want %d", v, len(got.Mappings), len(want.Mappings))
		}
		for i := range want.Mappings {
			if got.Mappings[i].Score != want.Mappings[i].Score {
				t.Errorf("%v: mapping %d score %+v, want %+v", v,
					i, got.Mappings[i].Score, want.Mappings[i].Score)
			}
			for j, img := range want.Mappings[i].Images {
				if got.Mappings[i].Images[j] != img {
					t.Errorf("%v: mapping %d image %d differs", v, i, j)
				}
			}
		}
		if got.MatchTime != 0 {
			t.Errorf("%v: MatchTime = %v, want 0 (matching happened upstream)", v, got.MatchTime)
		}
	}
}

// TestRunWithCandidatesValidation: malformed inputs are rejected before
// any pipeline work.
func TestRunWithCandidatesValidation(t *testing.T) {
	repo := smallRepo()
	r := NewRunner(repo)
	personal := personBooks()
	opts := DefaultOptions()
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{},
		matcher.Config{MinSim: opts.MinSim})

	if _, err := r.RunWithCandidates(context.Background(), personal, nil, opts); err == nil {
		t.Error("nil candidate set accepted")
	}
	other := personBooks()
	if _, err := r.RunWithCandidates(context.Background(), other, cands, opts); err == nil {
		t.Error("candidates for a different personal schema accepted")
	}
	bad := opts
	bad.Threshold = 1.5
	if _, err := r.RunWithCandidates(context.Background(), personal, cands, bad); err == nil {
		t.Error("out-of-range threshold accepted")
	}
	// Candidates computed against a different repository: foreign node IDs
	// must be refused, not silently indexed into this runner's arrays.
	foreign := NewRunner(smallRepo())
	if _, err := foreign.RunWithCandidates(context.Background(), personal, cands, opts); err == nil {
		t.Error("foreign candidate set accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunWithCandidates(ctx, personal, cands, opts); err == nil {
		t.Error("cancelled context not honoured")
	}
}
