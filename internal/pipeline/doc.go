// Package pipeline wires the full clustered schema matching architecture of
// Fig. 3: element matching (matcher) → clustering (cluster) → per-cluster
// mapping generation (mapgen) → one merged ranked list. It also exposes the
// non-clustered baseline (tree clusters) and collects the timing and counter
// instrumentation the experiments report.
//
// A Runner is the unit of reuse: it binds a repository to its labelling
// index once (the expensive O(N log N) build) and then executes any number
// of runs against it. Options selects the clustering variant, objective
// parameters, element matcher and the extensions (two-phase structural
// rescoring, adaptive top-N, cluster ordering, partial mappings,
// per-cluster parallel generation).
//
// # Concurrency
//
// A Runner is safe for concurrent use: the repository and labelling index
// are built by NewRunner and only read afterwards, and every Run /
// RunContext call keeps its working state (candidates, clusters, report) on
// its own stack — the serve package's worker pools depend on this.
// RunContext honours cancellation cooperatively: the context is checked
// between pipeline stages, between clusters during mapping generation, and
// inside the Parallelism fan-out, so a cancelled run stops within one
// cluster's worth of work. Reports are owned by the caller; the pipeline
// retains no reference to them.
package pipeline
