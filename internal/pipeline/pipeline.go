package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
	"bellflower/internal/trace"
)

// Variant selects one of the paper's clustering configurations (Sec. 5):
// the join-reclustering distance threshold produces small (2), medium (3)
// or large (4) clusters; VariantTree is the non-clustered baseline in which
// every repository tree is one cluster.
type Variant int

const (
	// VariantTree is the non-clustered baseline ("tree clusters").
	VariantTree Variant = iota
	// VariantSmall uses join distance threshold 2.
	VariantSmall
	// VariantMedium uses join distance threshold 3.
	VariantMedium
	// VariantLarge uses join distance threshold 4.
	VariantLarge
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantTree:
		return "tree"
	case VariantSmall:
		return "small"
	case VariantMedium:
		return "medium"
	case VariantLarge:
		return "large"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ClusterConfig returns the k-means configuration of the variant;
// ok is false for VariantTree, which does not run k-means.
func (v Variant) ClusterConfig() (cfg cluster.Config, ok bool) {
	cfg = cluster.DefaultConfig()
	switch v {
	case VariantSmall:
		cfg.JoinThreshold = 2
	case VariantMedium:
		cfg.JoinThreshold = 3
	case VariantLarge:
		cfg.JoinThreshold = 4
	default:
		return cluster.Config{}, false
	}
	return cfg, true
}

// Variants lists all variants in the order the paper's tables use.
func Variants() []Variant {
	return []Variant{VariantSmall, VariantMedium, VariantLarge, VariantTree}
}

// Options configures one matching run.
type Options struct {
	// Objective holds α and K of the objective function.
	Objective objective.Params

	// Threshold is δ: only mappings with Δ ≥ δ are reported.
	Threshold float64

	// MinSim is the element-matching candidate threshold.
	MinSim float64

	// TopN truncates the ranked mapping list (0 = all).
	TopN int

	// Variant selects the clustering configuration.
	Variant Variant

	// ClusterConfig overrides the variant's k-means configuration when
	// non-nil (ignored for VariantTree).
	ClusterConfig *cluster.Config

	// Matcher overrides the element matcher (default: paper-faithful
	// fuzzy name matcher).
	Matcher matcher.Matcher

	// Algorithm selects the mapping generator search (default B&B).
	Algorithm mapgen.Algorithm

	// IncludePartials also collects partial mappings from non-useful
	// clusters (the Sec. 2.3 extension).
	IncludePartials bool

	// OrderClusters processes useful clusters in descending quality order
	// (the Sec. 7 "ordering the clusters" extension); affects
	// Report.FirstGoodAfter instrumentation and the order mappings are
	// discovered, not the final ranking.
	OrderClusters bool

	// StructureMatcher enables the paper's two-phase technique (Sec. 2.3,
	// alternative clustered matching): localized matchers produce the
	// preliminary candidates, clustering partitions them, and this
	// structure matcher rescores candidates inside each useful cluster
	// before mapping generation. StructureWeight in [0,1] blends the
	// localized and structural scores (sim' = (1−w)·sim + w·struct).
	StructureMatcher matcher.Matcher

	// StructureWeight is the blend weight of StructureMatcher (default
	// 0.5 when a StructureMatcher is set).
	StructureWeight float64

	// Parallelism runs mapping generation over useful clusters with this
	// many goroutines (0 or 1 = sequential). Results are deterministic:
	// the final ranking is independent of completion order.
	Parallelism int

	// Agglomerative replaces the adapted k-means with single-linkage
	// threshold clustering (the variant's join threshold becomes the
	// merge threshold). Ignored for VariantTree.
	Agglomerative bool

	// AdaptiveTopN uses the adaptive top-N Branch & Bound (the pruning
	// threshold rises to the N-th best Δ found so far) instead of
	// generating everything and truncating. Requires TopN > 0; it returns
	// the same top-N list with less work. Composes with Parallelism: the
	// workers share one adaptive bound and the result stays bit-identical
	// to the sequential search for any worker count. Ignored when a
	// StructureMatcher is configured (re-scoring needs the full list).
	AdaptiveTopN bool
}

// Validate checks the option invariants shared by every pipeline entry
// point: the objective parameters and the threshold range. Entry points
// call it before any work; callers that front expensive precomputation
// (e.g. a serving router's candidate pre-pass) can call it first to reject
// malformed requests cheaply.
func (o Options) Validate() error {
	if err := o.Objective.Validate(); err != nil {
		return err
	}
	if o.Threshold < 0 || o.Threshold > 1 {
		return fmt.Errorf("pipeline: threshold %v outside [0,1]", o.Threshold)
	}
	return nil
}

// DefaultOptions mirrors the paper's reference experiment: δ = 0.75,
// α = 0.5, medium clusters.
func DefaultOptions() Options {
	return Options{
		Objective: objective.DefaultParams(),
		Threshold: 0.75,
		MinSim:    0.45,
		Variant:   VariantMedium,
	}
}

// Report is the instrumented result of one run.
type Report struct {
	// Variant echoes the clustering variant used.
	Variant Variant

	// MappingElements is the total number of (personal node, repository
	// node) candidate pairs produced by element matching.
	MappingElements int

	// Clusters is the number of clusters formed (all, useful or not).
	Clusters int

	// UsefulClusters can produce complete mappings (Tab. 1a col 1).
	UsefulClusters int

	// AvgElementsPerUsefulCluster is Tab. 1a col 2.
	AvgElementsPerUsefulCluster float64

	// ClusterSizes lists the element count of every cluster (Fig. 4).
	ClusterSizes []int

	// Iterations is the number of k-means iterations (0 for tree
	// clusters).
	Iterations int

	// Counters aggregates the mapping-generator indicators (Tab. 1a col 3
	// = SearchSpace, Tab. 1b).
	Counters mapgen.Counters

	// Mappings is the final ranked list (step ⑤).
	Mappings []mapgen.Mapping

	// Partials holds partial mappings from non-useful clusters when
	// requested.
	Partials []mapgen.PartialMapping

	// MatchTime, ClusterTime and GenTime are the wall-clock durations of
	// the three stages.
	MatchTime   time.Duration
	ClusterTime time.Duration
	GenTime     time.Duration

	// FirstGoodAfter is the number of useful clusters processed before
	// the first mapping with Δ ≥ δ appeared (1-based; 0 when none found).
	// With OrderClusters it measures the cluster-ordering extension's
	// time-to-first-mapping benefit.
	FirstGoodAfter int

	// Incomplete marks a merged report that is missing one or more
	// shards' contributions: the serving router's opt-in partial-results
	// fan-out merges the shards that succeeded instead of failing the
	// whole request. An Incomplete report's top-N is a lower bound, not
	// authoritative; ShardErrors says what is missing and why. Always
	// false for unsharded runs and for strict (default) routing.
	Incomplete bool

	// ShardErrors lists the per-shard failures of an Incomplete report,
	// in shard order.
	ShardErrors []ShardError
}

// ShardError records one shard's failure inside an Incomplete merged
// report.
type ShardError struct {
	// Shard is the failing shard's index in the router's shard order.
	Shard int `json:"shard"`

	// Err is the shard's error text.
	Err string `json:"error"`
}

// TotalTime returns the end-to-end duration of the run.
func (r *Report) TotalTime() time.Duration { return r.MatchTime + r.ClusterTime + r.GenTime }

// Deltas returns the similarity indexes of the ranked mappings, used to
// build preservation curves.
func (r *Report) Deltas() []float64 {
	out := make([]float64, len(r.Mappings))
	for i, m := range r.Mappings {
		out[i] = m.Score.Delta
	}
	return out
}

// Runner executes matching runs against a fixed repository, reusing the
// labelling index across runs. A Runner may be scoped to a shard view
// (NewViewRunner): element matching then considers only the view's member
// trees while every structural query still goes through the one shared
// index — this is how sharded serving keeps a single resident index.
//
// A Runner is safe for concurrent use: the repository, labelling index and
// view are built once by the constructors and only read afterwards, and
// every Run / RunContext call keeps its working state (candidates,
// clusters, report) on its own stack. Many goroutines may call Run on one
// Runner at once — the serve subsystem depends on this.
type Runner struct {
	repo     *schema.Repository
	ix       *labeling.Index
	view     *labeling.View // non-nil: matching restricted to the view's trees
	ni       *matcher.NameIndex
	vocab    *matcher.Vocabulary // the match universe grouped by interned key
	genStats *mapgen.EngineStats // generation-engine counters, shareable
}

// NewRunner builds the labelling index and the name-similarity index for
// the repository.
func NewRunner(repo *schema.Repository) *Runner {
	return newRunner(repo, labeling.NewIndex(repo), nil, matcher.NewNameIndex(repo))
}

// NewRunnerFromIndex wraps an already-built labelling index, sharing it
// instead of re-indexing the repository — the serving router uses this for
// its full-repository pre-pass runner so router and shards hold one index.
// A fresh name index is built; use NewRunnerFromIndexes to share one.
func NewRunnerFromIndex(ix *labeling.Index) *Runner {
	return newRunner(ix.Repository(), ix, nil, matcher.NewNameIndex(ix.Repository()))
}

// NewRunnerFromIndexes wraps already-built labelling and name indexes,
// sharing both: the serving layer builds each index once per repository
// generation and hands them to the pre-pass runner and every shard runner.
func NewRunnerFromIndexes(ix *labeling.Index, ni *matcher.NameIndex) *Runner {
	return newRunner(ix.Repository(), ix, nil, ni)
}

// NewViewRunner builds a runner restricted to a shard view: candidate
// matching covers only the view's member trees, and precomputed candidates
// or clusters handed to RunWithCandidates / RunWithClusters must lie inside
// the view. The underlying index (and its memory) is shared with every
// other runner over the same index. A fresh name index is built; sharded
// serving uses NewViewRunnerWithNameIndex so all shards share one.
func NewViewRunner(view *labeling.View) *Runner {
	return newRunner(view.Repository(), view.Index(), view, matcher.NewNameIndex(view.Repository()))
}

// NewViewRunnerWithNameIndex is NewViewRunner sharing an already-built name
// index, so every shard over one repository generation pays zero extra
// memory for it.
func NewViewRunnerWithNameIndex(view *labeling.View, ni *matcher.NameIndex) *Runner {
	return newRunner(view.Repository(), view.Index(), view, ni)
}

func newRunner(repo *schema.Repository, ix *labeling.Index, view *labeling.View, ni *matcher.NameIndex) *Runner {
	r := &Runner{repo: repo, ix: ix, view: view, ni: ni, genStats: mapgen.NewEngineStats()}
	r.vocab = ni.Vocabulary(r.matchNodes())
	return r
}

// Repository returns the runner's repository — always the full repository,
// even for view-scoped runners (views do not clone trees).
func (r *Runner) Repository() *schema.Repository { return r.repo }

// Index returns the runner's labelling index.
func (r *Runner) Index() *labeling.Index { return r.ix }

// NameIndex returns the runner's name-similarity index.
func (r *Runner) NameIndex() *matcher.NameIndex { return r.ni }

// GenStats returns the runner's generation-engine counters.
func (r *Runner) GenStats() *mapgen.EngineStats { return r.genStats }

// ShareGenStats replaces the runner's generation-engine counters with a
// shared instance, so every runner of one repository generation (the
// pre-pass runner and all shard runners) accumulates into one figure —
// the same sharing discipline the NameIndex kernel counters get from the
// constructors. Call before the first Run.
func (r *Runner) ShareGenStats(gs *mapgen.EngineStats) {
	if gs != nil {
		r.genStats = gs
	}
}

// View returns the shard view the runner is scoped to, or nil for a
// whole-repository runner.
func (r *Runner) View() *labeling.View { return r.view }

// matchNodes is the node universe element matching runs against. Both
// branches return a slice built once and shared (views cache their
// member-node slice at construction), so the cold path allocates nothing
// here.
func (r *Runner) matchNodes() []*schema.Node {
	if r.view != nil {
		return r.view.Nodes()
	}
	return r.repo.Nodes()
}

// MatchCandidates runs the element-matching kernel for one personal schema
// against this runner's node universe: the vocabulary-deduplicated keyed
// kernel for property-local matchers, the naive reference loop otherwise.
func (r *Runner) MatchCandidates(personal *schema.Tree, m matcher.Matcher, cfg matcher.Config) *matcher.Candidates {
	return r.vocab.FindCandidates(personal, m, cfg)
}

// checkOwned verifies that a precomputed candidate or cluster node belongs
// to this runner's repository and, for view-scoped runners, to the view.
func (r *Runner) checkOwned(n *schema.Node, what string) error {
	if n.ID < 0 || n.ID >= r.repo.Len() || r.repo.Node(n.ID) != n {
		return fmt.Errorf("pipeline: %s %v does not belong to this runner's repository", what, n)
	}
	if r.view != nil && !r.view.Contains(n) {
		return fmt.Errorf("pipeline: %s %v is outside this runner's shard view", what, n)
	}
	return nil
}

// Run executes the full pipeline for one personal schema. It is equivalent
// to RunContext with context.Background().
func (r *Runner) Run(personal *schema.Tree, opts Options) (*Report, error) {
	return r.RunContext(context.Background(), personal, opts)
}

// RunContext executes the full pipeline for one personal schema, honouring
// the context's deadline and cancellation. Cancellation is checked between
// pipeline stages, between useful clusters during mapping generation, and
// inside the Parallelism fan-out, so a cancelled run stops early (within
// one cluster's worth of work) and returns ctx.Err().
func (r *Runner) RunContext(ctx context.Context, personal *schema.Tree, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	m := opts.Matcher
	if m == nil {
		m = matcher.NameMatcher{}
	}

	// Stage 1: element matching (steps ② and ③).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	_, msp := trace.StartSpan(ctx, "pipeline.match")
	cands := r.MatchCandidates(personal, m, matcher.Config{MinSim: opts.MinSim})
	msp.End()
	return r.runFromCandidates(ctx, personal, cands, time.Since(t0), opts)
}

// RunWithCandidates executes the clustering and mapping-generation stages
// against precomputed element-matching candidates, skipping the quadratic
// FindCandidates step. The serving layer's shared candidate pre-pass uses
// it: the router matches the personal schema against the full repository
// once, restricts the candidate set onto each shard view
// (matcher.Candidates.Restrict) and hands every shard its slice — in the
// distributed topology the slice additionally crosses a process boundary
// in the view's local-ID space (internal/shardrpc) before landing here.
//
// cands must describe personal and reference nodes of this runner's
// repository (a projected set must be projected onto this repository's
// trees); Options.Matcher and Options.MinSim are ignored — they are baked
// into the candidate set. The report's MatchTime is zero: element matching
// happened upstream.
func (r *Runner) RunWithCandidates(ctx context.Context, personal *schema.Tree, cands *matcher.Candidates, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cands == nil {
		return nil, fmt.Errorf("pipeline: RunWithCandidates needs a candidate set")
	}
	if cands.Personal != personal {
		return nil, fmt.Errorf("pipeline: candidate set was computed for a different personal schema")
	}
	// Spot-check node ownership: a candidate set computed against (or
	// restricted to) another repository or another shard's view would index
	// foreign IDs into this runner's dense per-node arrays. Checking each
	// set's head is cheap and catches the realistic mistake — handing a
	// shard the full-repository set, or another shard's restriction.
	for i := range cands.Sets {
		if len(cands.Sets[i].Elems) == 0 {
			continue
		}
		if err := r.checkOwned(cands.Sets[i].Elems[0].Node, "candidate node"); err != nil {
			return nil, err
		}
	}
	return r.runFromCandidates(ctx, personal, cands, 0, opts)
}

// RunWithClusters executes only the mapping-generation stage: both the
// element-matching candidates and the clusters come precomputed. It is the
// deepest pre-staging entry point — the serving router uses it to run
// matching AND clustering once globally (clusters never span repository
// trees, so a global clustering projects exactly onto tree-level shards)
// and hand every shard just its clusters, making the sharded k-means
// variants identical to an unsharded run rather than a per-shard
// approximation.
//
// cands and clusters must reference nodes of this runner's repository and
// belong together (clusters built from cands under the same Options);
// iterations is echoed into Report.Iterations. Options fields consumed by
// the earlier stages (Matcher, MinSim, Variant's cluster config,
// ClusterConfig, Agglomerative) are ignored. MatchTime and ClusterTime are
// zero in the report: those stages ran upstream.
func (r *Runner) RunWithClusters(ctx context.Context, personal *schema.Tree, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cands == nil {
		return nil, fmt.Errorf("pipeline: RunWithClusters needs a candidate set")
	}
	if cands.Personal != personal {
		return nil, fmt.Errorf("pipeline: candidate set was computed for a different personal schema")
	}
	for _, cl := range clusters {
		if cl.Len() == 0 {
			continue
		}
		if err := r.checkOwned(cl.Elements[0].Node, fmt.Sprintf("cluster %d element", cl.ID)); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.runGeneration(ctx, personal, cands, clusters, iterations, 0, 0, opts)
}

// ComputeClusters runs the clustering stage (step c) on its own: the
// variant's configuration (or the ClusterConfig override) applied to the
// candidate set through the adapted k-means, the agglomerative alternative,
// or tree clustering for VariantTree. ix must be the labelling index of the
// repository the candidates reference.
func ComputeClusters(ix *labeling.Index, cands *matcher.Candidates, opts Options) (clusters []*cluster.Cluster, iterations int, err error) {
	if cfg, ok := opts.Variant.ClusterConfig(); ok {
		if opts.ClusterConfig != nil {
			cfg = *opts.ClusterConfig
		}
		var res *cluster.Result
		if opts.Agglomerative {
			res, err = cluster.Agglomerative(ix, cands, cluster.AgglomerativeConfig{
				MergeThreshold: cfg.JoinThreshold,
				MaxClusterSize: cfg.SplitAbove,
			})
		} else {
			res, err = cluster.KMeans(ix, cands, cfg)
		}
		if err != nil {
			return nil, 0, err
		}
		return res.Clusters, res.Iterations, nil
	}
	return cluster.TreeClusters(ix, cands).Clusters, 0, nil
}

// runFromCandidates is the shared tail of RunContext and RunWithCandidates:
// clustering and per-cluster mapping generation over an existing candidate
// set. matchTime is recorded in the report as the element-matching cost.
func (r *Runner) runFromCandidates(ctx context.Context, personal *schema.Tree, cands *matcher.Candidates, matchTime time.Duration, opts Options) (*Report, error) {
	// Stage 2: clustering (step c).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t1 := time.Now()
	_, csp := trace.StartSpan(ctx, "pipeline.cluster")
	clusters, iterations, err := ComputeClusters(r.ix, cands, opts)
	csp.End()
	if err != nil {
		return nil, err
	}
	return r.runGeneration(ctx, personal, cands, clusters, iterations, matchTime, time.Since(t1), opts)
}

// runGeneration is the mapping-generation stage shared by every entry
// point, instrumenting the report with the provided stage durations.
func (r *Runner) runGeneration(ctx context.Context, personal *schema.Tree, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int, matchTime, clusterTime time.Duration, opts Options) (*Report, error) {
	rep := &Report{Variant: opts.Variant}
	rep.MatchTime = matchTime
	rep.ClusterTime = clusterTime
	rep.MappingElements = cands.TotalMappingElements()
	rep.Iterations = iterations
	rep.Clusters = len(clusters)
	for _, cl := range clusters {
		rep.ClusterSizes = append(rep.ClusterSizes, cl.Len())
	}

	// Stage 3: mapping generation per cluster (steps ④ and ⑤).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t2 := time.Now()
	_, gsp := trace.StartSpan(ctx, "pipeline.generate")
	defer gsp.End()
	ev := objective.NewEvaluator(opts.Objective, r.ix, personal)
	genCfg := mapgen.Config{
		Threshold: opts.Threshold,
		Algorithm: opts.Algorithm,
		Stats:     r.genStats,
	}
	gen := mapgen.New(genCfg, r.ix, ev, cands)

	useful, nonUseful := splitUseful(clusters, personal.Len())
	if opts.OrderClusters {
		sortByQuality(useful, cands)
	}
	sizeSum := 0
	for _, cl := range useful {
		sizeSum += cl.Len()
	}
	rep.UsefulClusters = len(useful)
	if len(useful) > 0 {
		rep.AvgElementsPerUsefulCluster = float64(sizeSum) / float64(len(useful))
	}

	// generateIn searches one useful cluster, applying the two-phase
	// structural rescoring when configured.
	generateIn := func(cl *cluster.Cluster) ([]mapgen.Mapping, mapgen.Counters) {
		if opts.StructureMatcher == nil {
			return gen.GenerateInCluster(cl)
		}
		w := opts.StructureWeight
		if w == 0 {
			w = 0.5
		}
		member := make(map[int]bool, len(cl.Elements))
		for _, e := range cl.Elements {
			member[e.Node.ID] = true
		}
		rescored := matcher.Rescore(cands, opts.StructureMatcher, w,
			func(n *schema.Node) bool { return member[n.ID] })
		return mapgen.New(genCfg, r.ix, ev, rescored).GenerateInCluster(cl)
	}

	if opts.AdaptiveTopN && opts.TopN > 0 && opts.StructureMatcher == nil {
		ms, ctr := gen.GenerateTopNParallel(useful, opts.TopN, opts.Parallelism,
			func() bool { return ctx.Err() != nil })
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep.Counters = ctr
		rep.Mappings = ms
		if len(ms) > 0 {
			rep.FirstGoodAfter = 1 // not meaningful under the global bound
		}
		if opts.IncludePartials {
			if err := collectPartials(ctx, rep, gen, nonUseful); err != nil {
				return nil, err
			}
		}
		rep.GenTime = time.Since(t2)
		return rep, nil
	}

	perCluster := make([][]mapgen.Mapping, len(useful))
	perCounter := make([]mapgen.Counters, len(useful))
	if opts.Parallelism > 1 && len(useful) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, opts.Parallelism)
		for i, cl := range useful {
			wg.Add(1)
			go func(i int, cl *cluster.Cluster) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// A cancelled run skips the clusters still queued
				// behind the semaphore.
				if ctx.Err() != nil {
					return
				}
				perCluster[i], perCounter[i] = generateIn(cl)
			}(i, cl)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		for i, cl := range useful {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			perCluster[i], perCounter[i] = generateIn(cl)
		}
	}
	found := 0
	for i := range perCluster {
		found += len(perCluster[i])
	}
	var all []mapgen.Mapping // stays nil when nothing was found (wire round-trips as nil)
	if found > 0 {
		all = make([]mapgen.Mapping, 0, found)
	}
	for i := range useful {
		rep.Counters.Add(perCounter[i])
		if len(perCluster[i]) > 0 && rep.FirstGoodAfter == 0 {
			rep.FirstGoodAfter = i + 1
		}
		all = append(all, perCluster[i]...)
	}
	mapgen.Rank(all)
	if opts.TopN > 0 && len(all) > opts.TopN {
		all = all[:opts.TopN]
	}
	rep.Mappings = all

	if opts.IncludePartials {
		if err := collectPartials(ctx, rep, gen, nonUseful); err != nil {
			return nil, err
		}
	}
	rep.GenTime = time.Since(t2)
	return rep, nil
}

// collectPartials gathers ranked partial mappings from non-useful clusters,
// checking for cancellation between clusters.
func collectPartials(ctx context.Context, rep *Report, gen *mapgen.Generator, nonUseful []*cluster.Cluster) error {
	for _, cl := range nonUseful {
		if err := ctx.Err(); err != nil {
			return err
		}
		pms, ctr := gen.GeneratePartialInCluster(cl)
		_ = ctr // partial counters are not part of the paper's tables
		rep.Partials = append(rep.Partials, pms...)
	}
	sort.Slice(rep.Partials, func(i, j int) bool {
		return rep.Partials[i].Score.Delta > rep.Partials[j].Score.Delta
	})
	return nil
}

// splitUseful partitions clusters by usefulness for an n-node personal
// schema.
func splitUseful(clusters []*cluster.Cluster, n int) (useful, nonUseful []*cluster.Cluster) {
	full := uint64(1)<<uint(n) - 1
	for _, cl := range clusters {
		if cl.Useful(full) {
			useful = append(useful, cl)
		} else {
			nonUseful = append(nonUseful, cl)
		}
	}
	return useful, nonUseful
}

// ClusterQuality scores a cluster's potential to deliver good mappings: the
// average, over personal nodes, of the best element similarity the cluster
// offers for that node — an upper bound on any mapping's Δsim within the
// cluster. (The Sec. 7 "ordering the clusters" future-work item.)
func ClusterQuality(cl *cluster.Cluster, cands *matcher.Candidates) float64 {
	n := cands.Personal.Len()
	member := make(map[int]bool, len(cl.Elements))
	for _, e := range cl.Elements {
		member[e.Node.ID] = true
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		best := 0.0
		for _, c := range cands.Sets[i].Elems {
			if member[c.Node.ID] && c.Sim > best {
				best = c.Sim
				break // sets are sorted by descending sim
			}
		}
		sum += best
	}
	return sum / float64(n)
}

func sortByQuality(clusters []*cluster.Cluster, cands *matcher.Candidates) {
	type scored struct {
		cl *cluster.Cluster
		q  float64
	}
	ss := make([]scored, len(clusters))
	for i, cl := range clusters {
		ss[i] = scored{cl, ClusterQuality(cl, cands)}
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].q > ss[j].q })
	for i := range ss {
		clusters[i] = ss[i].cl
	}
}
