package labeling

// Bitset is a dense bitset over a compact integer ID space — repository
// node IDs or view-local IDs, both of which number 0..Len()-1. The mapping
// generator uses it for per-cluster membership and the 1-to-1 "used image"
// check, replacing per-search map[int]bool allocations: a Bitset is grown
// once to the repository size and reused across searches, so the warm path
// touches no allocator.
//
// The zero value is an empty bitset; Grow it before use. A Bitset is not
// safe for concurrent mutation — each search owns its own (pooled) set.
type Bitset struct {
	words []uint64
}

// NewBitset returns a bitset able to hold IDs 0..n-1, all clear.
func NewBitset(n int) *Bitset {
	b := &Bitset{}
	b.Grow(n)
	return b
}

// Grow extends the bitset to hold IDs 0..n-1, preserving existing bits.
// It never shrinks.
func (b *Bitset) Grow(n int) {
	want := (n + 63) / 64
	if want <= len(b.words) {
		return
	}
	if want <= cap(b.words) {
		b.words = b.words[:want]
		return
	}
	grown := make([]uint64, want)
	copy(grown, b.words)
	b.words = grown
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return len(b.words) * 64 }

// Set marks id.
func (b *Bitset) Set(id int) { b.words[id>>6] |= 1 << uint(id&63) }

// Unset clears id.
func (b *Bitset) Unset(id int) { b.words[id>>6] &^= 1 << uint(id&63) }

// Has reports whether id is marked.
func (b *Bitset) Has(id int) bool { return b.words[id>>6]&(1<<uint(id&63)) != 0 }

// Reset clears every bit. O(Len/64); callers that marked only a few IDs
// (cluster membership) clear them individually instead, keeping the cost
// proportional to what was set.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
