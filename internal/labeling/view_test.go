package labeling

import (
	"testing"

	"bellflower/internal/schema"
)

func viewRepo(t *testing.T) *schema.Repository {
	t.Helper()
	repo := schema.NewRepository()
	for _, spec := range []string{
		"lib(book(title,author(first,last)),shelf)",
		"store(item(name,price),clerk)",
		"archive(tome(heading))",
	} {
		repo.MustAdd(schema.MustParseSpec(spec))
	}
	if err := repo.Validate(); err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestViewMembershipAndTranslation(t *testing.T) {
	repo := viewRepo(t)
	ix := NewIndex(repo)
	v := NewView(ix, []*schema.Tree{repo.Tree(0), repo.Tree(2)})

	if v.Index() != ix || v.Repository() != repo {
		t.Fatal("view does not share the index/repository it was built over")
	}
	if v.NumTrees() != 2 {
		t.Fatalf("NumTrees = %d, want 2", v.NumTrees())
	}
	wantLen := repo.Tree(0).Len() + repo.Tree(2).Len()
	if v.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", v.Len(), wantLen)
	}

	// Local IDs are dense, cover exactly the member nodes, and round-trip.
	seen := make(map[int]bool)
	for _, n := range v.Nodes() {
		l := v.LocalID(n)
		if l < 0 || l >= v.Len() {
			t.Fatalf("LocalID(%v) = %d out of range", n, l)
		}
		if seen[l] {
			t.Fatalf("local ID %d assigned twice", l)
		}
		seen[l] = true
		if v.GlobalID(l) != n.ID || v.Node(l) != n {
			t.Fatalf("translation round-trip failed for %v (local %d)", n, l)
		}
		if !v.Contains(n) {
			t.Fatalf("member node %v not Contains", n)
		}
	}
	if len(seen) != wantLen {
		t.Fatalf("%d local IDs for %d member nodes", len(seen), wantLen)
	}

	// Non-member tree and nodes are outside.
	if v.ContainsTree(repo.Tree(1)) {
		t.Error("non-member tree reported as member")
	}
	for _, n := range repo.Tree(1).Nodes() {
		if v.Contains(n) || v.LocalID(n) != -1 {
			t.Errorf("non-member node %v reported inside the view", n)
		}
	}
	if !v.ContainsTree(repo.Tree(0)) || !v.ContainsTree(repo.Tree(2)) {
		t.Error("member tree not reported as member")
	}
	if v.Contains(nil) || v.ContainsTree(nil) {
		t.Error("nil accepted as member")
	}
	// A structurally foreign node (same IDs, different repository) must not
	// slip through on ID alone.
	other := viewRepo(t)
	if v.Contains(other.Tree(0).Root()) {
		t.Error("foreign repository's node accepted")
	}
}

func TestViewStructuralQueriesMatchIndex(t *testing.T) {
	repo := viewRepo(t)
	ix := NewIndex(repo)
	v := NewView(ix, []*schema.Tree{repo.Tree(0)})

	tr := repo.Tree(0)
	for _, a := range tr.Nodes() {
		if v.Depth(a) != ix.Depth(a) || v.TreeID(a) != ix.TreeID(a) {
			t.Fatalf("view disagrees with index on %v", a)
		}
		for _, b := range tr.Nodes() {
			if v.Distance(a, b) != ix.Distance(a, b) {
				t.Fatalf("Distance(%v,%v) differs from index", a, b)
			}
			if v.LCA(a, b) != ix.LCA(a, b) {
				t.Fatalf("LCA(%v,%v) differs from index", a, b)
			}
			if !v.SameTree(a, b) {
				t.Fatalf("SameTree(%v,%v) = false within one tree", a, b)
			}
		}
	}

	// Queries on nodes outside the view panic rather than answer quietly.
	defer func() {
		if recover() == nil {
			t.Error("Depth of a non-member node did not panic")
		}
	}()
	v.Depth(repo.Tree(1).Root())
}

func TestViewStats(t *testing.T) {
	repo := viewRepo(t)
	ix := NewIndex(repo)
	v := NewView(ix, []*schema.Tree{repo.Tree(0), repo.Tree(1)})
	st := v.Stats()
	if st.Trees != 2 || st.Nodes != repo.Tree(0).Len()+repo.Tree(1).Len() {
		t.Errorf("Stats = %+v", st)
	}
	if st.MaxTree < st.MinTree || st.MinTree <= 0 {
		t.Errorf("tree extrema inconsistent: %+v", st)
	}
}

func TestIndexMemoryBytes(t *testing.T) {
	repo := viewRepo(t)
	ix := NewIndex(repo)
	b := ix.MemoryBytes()
	// Lower bound: the three per-node arrays plus the Euler tour.
	if min := int64(repo.Len())*3*4 + int64(2*repo.Len()-repo.NumTrees())*4; b < min {
		t.Errorf("MemoryBytes = %d, want >= %d", b, min)
	}
	// Views must be cheap next to the index they avoid duplicating; for a
	// tiny repository just assert the figure is positive and independent
	// of how many views exist.
	v1 := NewView(ix, repo.Trees())
	v2 := NewView(ix, repo.Trees()[:1])
	if v1.MemoryBytes() <= 0 || v2.MemoryBytes() <= 0 {
		t.Error("view MemoryBytes not positive")
	}
	if ix.MemoryBytes() != b {
		t.Error("creating views changed the index footprint")
	}
}

func TestNewViewRejectsForeignAndDuplicateTrees(t *testing.T) {
	repo := viewRepo(t)
	other := viewRepo(t)
	ix := NewIndex(repo)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("foreign tree", func() { NewView(ix, []*schema.Tree{other.Tree(0)}) })
	mustPanic("duplicate tree", func() { NewView(ix, []*schema.Tree{repo.Tree(0), repo.Tree(0)}) })
}
