package labeling

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() < 130 {
		t.Fatalf("Len() = %d after NewBitset(130)", b.Len())
	}
	for _, id := range []int{0, 1, 63, 64, 65, 127, 129} {
		if b.Has(id) {
			t.Fatalf("fresh bitset has %d set", id)
		}
		b.Set(id)
		if !b.Has(id) {
			t.Fatalf("Set(%d) not visible", id)
		}
	}
	b.Unset(64)
	if b.Has(64) || !b.Has(63) || !b.Has(65) {
		t.Error("Unset(64) disturbed neighbours or failed")
	}
	b.Reset()
	for _, id := range []int{0, 63, 65, 129} {
		if b.Has(id) {
			t.Errorf("Reset left %d set", id)
		}
	}
}

func TestBitsetGrowPreservesBits(t *testing.T) {
	b := NewBitset(10)
	b.Set(3)
	b.Set(9)
	b.Grow(5) // never shrinks
	b.Grow(1000)
	if !b.Has(3) || !b.Has(9) {
		t.Error("Grow lost existing bits")
	}
	if b.Has(999) {
		t.Error("grown region not clear")
	}
	b.Set(999)
	if !b.Has(999) {
		t.Error("cannot set in grown region")
	}
}

// Property: a Bitset agrees with a map[int]bool under a random
// set/unset/query workload.
func TestBitsetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	b := NewBitset(n)
	ref := map[int]bool{}
	for op := 0; op < 20000; op++ {
		id := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			b.Set(id)
			ref[id] = true
		case 1:
			b.Unset(id)
			delete(ref, id)
		default:
			if b.Has(id) != ref[id] {
				t.Fatalf("op %d: Has(%d) = %v, map says %v", op, id, b.Has(id), ref[id])
			}
		}
	}
}
