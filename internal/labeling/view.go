package labeling

import (
	"fmt"

	"bellflower/internal/schema"
)

// View is a lightweight restriction of an Index to a subset of the
// repository's trees — the substrate of shared-index sharding. A shard
// backed by a View answers Tree/Depth/LCA/Distance queries through the one
// repository-wide Index (its member nodes ARE the repository's nodes, no
// clones), so any number of views share a single resident index instead of
// each shard building its own. A View additionally carries a dense
// global↔local node-ID translation: local IDs number the member nodes
// 0..Len()-1 in repository order, giving out-of-process shard clients (and
// per-shard auxiliary arrays) a compact ID space without materializing a
// sub-repository.
//
// A View is immutable and safe for concurrent use. Build one with NewView;
// the construction is O(repository size) in time and keeps O(repository
// size) int32 translation state — small next to the Euler/sparse tables of
// the Index it avoids duplicating.
type View struct {
	ix    *Index
	trees []*schema.Tree

	memberTree []bool         // indexed by tree ID
	local      []int32        // global node ID → local ID, -1 outside the view
	global     []int32        // local ID → global node ID
	nodes      []*schema.Node // member nodes in local-ID order, built once
}

// NewView builds a view of the index restricted to the given trees, which
// must belong to the index's repository. Trees are recorded in the order
// given; member nodes get local IDs in that same order (tree by tree, each
// tree's nodes in preorder).
func NewView(ix *Index, trees []*schema.Tree) *View {
	repo := ix.Repository()
	v := &View{
		ix:         ix,
		trees:      append([]*schema.Tree(nil), trees...),
		memberTree: make([]bool, repo.NumTrees()),
		local:      make([]int32, repo.Len()),
	}
	for i := range v.local {
		v.local[i] = -1
	}
	n := 0
	for _, t := range v.trees {
		n += t.Len()
	}
	v.global = make([]int32, 0, n)
	for _, t := range v.trees {
		if t.ID < 0 || t.ID >= repo.NumTrees() || repo.Tree(t.ID) != t {
			panic(fmt.Sprintf("labeling: NewView: tree %q does not belong to the index's repository", t.Name))
		}
		if v.memberTree[t.ID] {
			panic(fmt.Sprintf("labeling: NewView: tree %q listed twice", t.Name))
		}
		v.memberTree[t.ID] = true
		for _, node := range t.Nodes() {
			v.local[node.ID] = int32(len(v.global))
			v.global = append(v.global, int32(node.ID))
			v.nodes = append(v.nodes, node)
		}
	}
	return v
}

// Index returns the shared repository-wide index the view restricts.
func (v *View) Index() *Index { return v.ix }

// Repository returns the full repository the underlying index was built
// over (not a sub-repository — views do not clone trees).
func (v *View) Repository() *schema.Repository { return v.ix.Repository() }

// Trees returns the member trees. The returned slice must not be modified.
func (v *View) Trees() []*schema.Tree { return v.trees }

// NumTrees returns the number of member trees.
func (v *View) NumTrees() int { return len(v.trees) }

// Len returns the total number of member nodes.
func (v *View) Len() int { return len(v.global) }

// ContainsTree reports whether the tree is a member of the view.
func (v *View) ContainsTree(t *schema.Tree) bool {
	return t != nil && t.ID >= 0 && t.ID < len(v.memberTree) && v.memberTree[t.ID] &&
		v.ix.Repository().Tree(t.ID) == t
}

// Contains reports whether the repository node belongs to a member tree.
func (v *View) Contains(n *schema.Node) bool {
	return n != nil && n.ID >= 0 && n.ID < len(v.local) && v.local[n.ID] >= 0 &&
		v.ix.Repository().Node(n.ID) == n
}

// LocalID translates a member node's repository-wide ID into the view's
// dense local ID space, or -1 when the node is outside the view.
func (v *View) LocalID(n *schema.Node) int {
	if !v.Contains(n) {
		return -1
	}
	return int(v.local[n.ID])
}

// GlobalID is the inverse of LocalID: the repository-wide node ID of local
// ID l. It panics when l is out of range.
func (v *View) GlobalID(l int) int { return int(v.global[l]) }

// Node returns the member node with the given local ID.
func (v *View) Node(l int) *schema.Node { return v.ix.Repository().Node(int(v.global[l])) }

// Nodes returns every member node (the repository's own node objects, not
// copies) in local-ID order. The slice is built once at view construction
// and shared by every caller — Runner.matchNodes sits on the cold-path
// element-matching loop, so a per-call materialization would allocate
// O(view) per request. The returned slice must not be modified.
func (v *View) Nodes() []*schema.Node { return v.nodes }

// Depth returns the member node's depth within its tree (Index.Depth
// restricted to the view). It panics for nodes outside the view.
func (v *View) Depth(n *schema.Node) int {
	v.mustContain(n, "Depth")
	return v.ix.Depth(n)
}

// TreeID returns the repository-wide tree ID of the member node. It panics
// for nodes outside the view.
func (v *View) TreeID(n *schema.Node) int {
	v.mustContain(n, "TreeID")
	return v.ix.TreeID(n)
}

// SameTree reports whether two member nodes share a tree. It panics for
// nodes outside the view.
func (v *View) SameTree(a, b *schema.Node) bool {
	v.mustContain(a, "SameTree")
	v.mustContain(b, "SameTree")
	return v.ix.SameTree(a, b)
}

// LCA returns the lowest common ancestor of two member nodes of one tree in
// O(1). It panics for nodes outside the view or in different trees.
func (v *View) LCA(a, b *schema.Node) *schema.Node {
	v.mustContain(a, "LCA")
	v.mustContain(b, "LCA")
	return v.ix.LCA(a, b)
}

// Distance returns the path length between two member nodes in O(1), or -1
// when they belong to different trees. It panics for nodes outside the
// view.
func (v *View) Distance(a, b *schema.Node) int {
	v.mustContain(a, "Distance")
	v.mustContain(b, "Distance")
	return v.ix.Distance(a, b)
}

func (v *View) mustContain(n *schema.Node, op string) {
	if !v.Contains(n) {
		panic(fmt.Sprintf("labeling: View.%s(%v): node outside the view's member trees", op, n))
	}
}

// Stats summarizes the member trees the way Repository.Stats summarizes a
// whole repository, so a view-backed shard reports its own slice of the
// forest rather than the shared total.
func (v *View) Stats() schema.Stats {
	s := schema.Stats{Trees: len(v.trees)}
	for i, t := range v.trees {
		s.Nodes += t.Len()
		if d := t.MaxDepth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
		if l := t.Len(); l > s.MaxTree {
			s.MaxTree = l
		}
		if l := t.Len(); i == 0 || l < s.MinTree {
			s.MinTree = l
		}
	}
	return s
}

// MemoryBytes estimates the view's own resident bytes — the translation
// arrays, the cached member-node slice and the tree list, NOT the shared
// index (see Index.MemoryBytes). The point of views is that this figure
// stays O(repository) words per view while the index is held once.
func (v *View) MemoryBytes() int64 {
	return int64(len(v.local))*4 + int64(len(v.global))*4 +
		int64(len(v.memberTree)) + int64(len(v.trees))*8 +
		int64(len(v.nodes))*8
}
