package labeling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bellflower/internal/schema"
)

func buildRepo(specs ...string) *schema.Repository {
	r := schema.NewRepository()
	for _, s := range specs {
		r.MustAdd(schema.MustParseSpec(s))
	}
	return r
}

func TestIndexPaperExample(t *testing.T) {
	// Repository fragment from Fig. 1 of the paper.
	repo := buildRepo("lib(address,book(authorName,data(title),shelf))")
	ix := NewIndex(repo)
	tr := repo.Tree(0)
	lib := tr.Find("lib")
	addr := tr.Find("address")
	book := tr.Find("book")
	an := tr.Find("authorName")
	data := tr.Find("data")
	title := tr.Find("title")
	shelf := tr.Find("shelf")

	tests := []struct {
		a, b *schema.Node
		d    int
		lca  *schema.Node
	}{
		{lib, lib, 0, lib},
		{lib, addr, 1, lib},
		{lib, title, 3, lib},
		{addr, title, 4, lib},
		{an, title, 3, book},
		{title, shelf, 3, book},
		{data, title, 1, data},
	}
	for _, tc := range tests {
		if got := ix.Distance(tc.a, tc.b); got != tc.d {
			t.Errorf("Distance(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.d)
		}
		if got := ix.LCA(tc.a, tc.b); got != tc.lca {
			t.Errorf("LCA(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.lca)
		}
	}
}

func TestCrossTree(t *testing.T) {
	repo := buildRepo("a(b)", "x(y)")
	ix := NewIndex(repo)
	a := repo.Tree(0).Find("a")
	y := repo.Tree(1).Find("y")
	if ix.SameTree(a, y) {
		t.Errorf("SameTree across trees = true")
	}
	if got := ix.Distance(a, y); got != -1 {
		t.Errorf("cross-tree Distance = %d, want -1", got)
	}
	if ix.IsAncestor(a, y) {
		t.Errorf("cross-tree IsAncestor = true")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("cross-tree LCA should panic")
		}
	}()
	ix.LCA(a, y)
}

func TestIsAncestor(t *testing.T) {
	repo := buildRepo("r(a(x,y(q)),b(z))")
	ix := NewIndex(repo)
	tr := repo.Tree(0)
	n := func(name string) *schema.Node { return tr.Find(name) }
	if !ix.IsAncestor(n("r"), n("q")) {
		t.Errorf("r should be ancestor of q")
	}
	if !ix.IsAncestor(n("a"), n("a")) {
		t.Errorf("IsAncestor is inclusive")
	}
	if ix.IsAncestor(n("q"), n("a")) {
		t.Errorf("q is not an ancestor of a")
	}
	if ix.IsAncestor(n("b"), n("q")) {
		t.Errorf("b is not an ancestor of q")
	}
}

func TestSingleNodeTrees(t *testing.T) {
	repo := buildRepo("a", "b", "c")
	ix := NewIndex(repo)
	a := repo.Tree(0).Root()
	if got := ix.Distance(a, a); got != 0 {
		t.Errorf("self distance = %d", got)
	}
	if got := ix.LCA(a, a); got != a {
		t.Errorf("self LCA = %v", got)
	}
}

// randomForest builds a repository of nt random trees with up to maxN nodes.
func randomForest(rng *rand.Rand, nt, maxN int) *schema.Repository {
	repo := schema.NewRepository()
	for i := 0; i < nt; i++ {
		n := 1 + rng.Intn(maxN)
		b := schema.NewBuilder("t")
		nodes := []*schema.Node{b.Root("n")}
		for j := 1; j < n; j++ {
			p := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, b.Element(p, "n"))
		}
		repo.MustAdd(b.MustTree())
	}
	return repo
}

// Property: the O(1) index agrees with the naive parent-walking Distance and
// LCA on random forests.
func TestIndexMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		repo := randomForest(rng, 1+rng.Intn(4), 60)
		ix := NewIndex(repo)
		for trial := 0; trial < 50; trial++ {
			tr := repo.Tree(rng.Intn(repo.NumTrees()))
			ns := tr.Nodes()
			a := ns[rng.Intn(len(ns))]
			b := ns[rng.Intn(len(ns))]
			if ix.Distance(a, b) != tr.Distance(a, b) {
				return false
			}
			if ix.LCA(a, b) != schema.LCA(a, b) {
				return false
			}
			if ix.Depth(a) != a.Depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: PathLengthSum of a single pair equals Distance; for chains of
// pairs along a personal-schema shape, the union never exceeds the sum of
// individual path lengths and is at least the largest individual length.
func TestPathLengthSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		repo := randomForest(rng, 1, 50)
		ix := NewIndex(repo)
		ns := repo.Tree(0).Nodes()
		pick := func() *schema.Node { return ns[rng.Intn(len(ns))] }
		a, b, c := pick(), pick(), pick()
		if ix.PathLengthSum([][2]*schema.Node{{a, b}}) != ix.Distance(a, b) {
			return false
		}
		union := ix.PathLengthSum([][2]*schema.Node{{a, b}, {a, c}})
		dab, dac := ix.Distance(a, b), ix.Distance(a, c)
		if union > dab+dac {
			return false
		}
		max := dab
		if dac > max {
			max = dac
		}
		return union >= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPathLengthSumSharedEdges(t *testing.T) {
	repo := buildRepo("r(a(b(c)))")
	ix := NewIndex(repo)
	tr := repo.Tree(0)
	r := tr.Find("r")
	b := tr.Find("b")
	c := tr.Find("c")
	// path r-b (2 edges) and r-c (3 edges) share the r-a-b prefix: union = 3
	got := ix.PathLengthSum([][2]*schema.Node{{r, b}, {r, c}})
	if got != 3 {
		t.Errorf("union = %d, want 3", got)
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	repo := randomForest(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(repo)
	}
}

func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	repo := randomForest(rng, 50, 200)
	ix := NewIndex(repo)
	ns := repo.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ns[i%len(ns)]
		c := ns[(i*7+3)%len(ns)]
		ix.Distance(a, c)
	}
}
