// Package labeling implements node labelling for constant-time structural
// queries over a schema repository: lowest common ancestor, tree distance
// (path length) and ancestor tests.
//
// The paper's Bellflower system "uses node labeling techniques [12] to
// provide low-cost computation of path lengths" because the k-means
// clustering distance measure is evaluated very often (Sec. 4). This package
// is that substrate: an Index is built once per repository in O(N log N) and
// answers Distance/LCA queries in O(1) using an Euler tour with a sparse
// table for range-minimum queries.
//
// For sharded serving, a View restricts one shared Index to a subset of the
// repository's trees: shards answer every structural query through the
// single resident index (member nodes are the repository's own node
// objects) and carry only a dense global↔local node-ID translation, so
// index memory stays one full-repository copy regardless of shard count.
// Index.MemoryBytes and View.MemoryBytes expose the resident footprint for
// stats and benchmarks.
package labeling

import (
	"fmt"
	"math/bits"

	"bellflower/internal/schema"
)

// Index answers structural queries over one repository in O(1) after an
// O(N log N) build. The Index is immutable and safe for concurrent use.
type Index struct {
	repo *schema.Repository

	// Per node (indexed by Node.ID):
	depth []int32 // node depth within its tree
	tree  []int32 // owning tree ID
	first []int32 // first occurrence of the node in the Euler tour

	// Euler tour of the whole forest; tours of individual trees are
	// concatenated (queries never cross trees because first-occurrence
	// indices of nodes in different trees are compared only after the tree
	// check).
	euler []int32 // node IDs in tour order

	// sparse[k][i] = node ID with minimum depth in euler[i : i+2^k]
	sparse [][]int32
	log2   []uint8 // floor(log2(i)) for i in [1, len(euler)]
}

// NewIndex builds the labelling index for a repository.
func NewIndex(repo *schema.Repository) *Index {
	n := repo.Len()
	ix := &Index{
		repo:  repo,
		depth: make([]int32, n),
		tree:  make([]int32, n),
		first: make([]int32, n),
	}
	ix.euler = make([]int32, 0, 2*n)
	for _, t := range repo.Trees() {
		ix.tourTree(t)
	}
	ix.buildSparse()
	return ix
}

func (ix *Index) tourTree(t *schema.Tree) {
	// Iterative Euler tour to keep stack depth independent of tree shape.
	type frame struct {
		node *schema.Node
		next int // next child index to visit
	}
	root := t.Root()
	stack := []frame{{node: root}}
	ix.visit(root, t)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := f.node.Children()
		if f.next < len(kids) {
			c := kids[f.next]
			f.next++
			ix.visit(c, t)
			stack = append(stack, frame{node: c})
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			// returning to the parent: record it again in the tour
			ix.euler = append(ix.euler, int32(stack[len(stack)-1].node.ID))
		}
	}
}

func (ix *Index) visit(n *schema.Node, t *schema.Tree) {
	id := n.ID
	ix.depth[id] = int32(n.Depth)
	ix.tree[id] = int32(t.ID)
	ix.first[id] = int32(len(ix.euler))
	ix.euler = append(ix.euler, int32(id))
}

func (ix *Index) buildSparse() {
	m := len(ix.euler)
	if m == 0 {
		return
	}
	levels := bits.Len(uint(m))
	ix.sparse = make([][]int32, levels)
	ix.sparse[0] = ix.euler // level 0 is the tour itself
	for k := 1; k < levels; k++ {
		width := 1 << k
		prev := ix.sparse[k-1]
		row := make([]int32, m-width+1)
		half := width / 2
		for i := range row {
			a, b := prev[i], prev[i+half]
			if ix.depth[a] <= ix.depth[b] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		ix.sparse[k] = row
	}
	ix.log2 = make([]uint8, m+1)
	for i := 2; i <= m; i++ {
		ix.log2[i] = ix.log2[i/2] + 1
	}
}

// Repository returns the repository the index was built over.
func (ix *Index) Repository() *schema.Repository { return ix.repo }

// MemoryBytes estimates the index's resident bytes: the per-node label
// arrays, the Euler tour and the sparse RMQ table (whose level 0 aliases
// the tour and is counted once). This is the figure sharding de-duplicates
// — serve stats and the throughput benchmark report it so a second
// full-repository copy cannot reappear unnoticed.
func (ix *Index) MemoryBytes() int64 {
	b := int64(len(ix.depth)+len(ix.tree)+len(ix.first)+len(ix.euler)) * 4
	for k := 1; k < len(ix.sparse); k++ { // sparse[0] aliases euler
		b += int64(len(ix.sparse[k])) * 4
	}
	return b + int64(len(ix.log2))
}

// SameTree reports whether the two nodes belong to the same tree.
func (ix *Index) SameTree(a, b *schema.Node) bool {
	return ix.tree[a.ID] == ix.tree[b.ID]
}

// TreeID returns the tree ID of the node.
func (ix *Index) TreeID(n *schema.Node) int { return int(ix.tree[n.ID]) }

// Depth returns the node's depth within its tree.
func (ix *Index) Depth(n *schema.Node) int { return int(ix.depth[n.ID]) }

// LCA returns the lowest common ancestor of a and b in O(1). It panics if
// the nodes belong to different trees; call SameTree first when unsure.
func (ix *Index) LCA(a, b *schema.Node) *schema.Node {
	if ix.tree[a.ID] != ix.tree[b.ID] {
		panic(fmt.Sprintf("labeling: LCA(%v, %v): nodes in different trees", a, b))
	}
	return ix.repo.Node(ix.lcaID(a.ID, b.ID))
}

func (ix *Index) lcaID(a, b int) int {
	i, j := ix.first[a], ix.first[b]
	if i > j {
		i, j = j, i
	}
	length := j - i + 1
	k := ix.log2[length]
	left := ix.sparse[k][i]
	right := ix.sparse[k][j-int32(1)<<k+1]
	if ix.depth[left] <= ix.depth[right] {
		return int(left)
	}
	return int(right)
}

// Distance returns the number of edges on the path between a and b in O(1),
// or -1 if the nodes belong to different trees (the clustering code treats
// cross-tree distance as infinite).
func (ix *Index) Distance(a, b *schema.Node) int {
	if ix.tree[a.ID] != ix.tree[b.ID] {
		return -1
	}
	l := ix.lcaID(a.ID, b.ID)
	return int(ix.depth[a.ID] + ix.depth[b.ID] - 2*ix.depth[l])
}

// DistanceID is Distance over raw node IDs, avoiding pointer loads in hot
// loops (k-means assignment computes millions of distances).
func (ix *Index) DistanceID(a, b int) int {
	if ix.tree[a] != ix.tree[b] {
		return -1
	}
	l := ix.lcaID(a, b)
	return int(ix.depth[a] + ix.depth[b] - 2*ix.depth[l])
}

// IsAncestor reports whether a is an ancestor of b (inclusive: a node is its
// own ancestor for this predicate's purposes when a == b).
func (ix *Index) IsAncestor(a, b *schema.Node) bool {
	if ix.tree[a.ID] != ix.tree[b.ID] {
		return false
	}
	return ix.lcaID(a.ID, b.ID) == a.ID
}

// PathLengthSum returns the total number of edges in the union of the tree
// paths between consecutive pairs. Used by the objective function to compute
// |Et|: the edge set of the mapping subtree t is the union of the paths each
// personal-schema edge maps to (Def. 2). pairs lists (u', v') image pairs.
// All nodes must be in the same tree. Union semantics deduplicate edges
// shared between paths; an edge is identified by its child endpoint.
func (ix *Index) PathLengthSum(pairs [][2]*schema.Node) int {
	seen := make(map[int]struct{}, 8)
	for _, p := range pairs {
		ix.addPathEdges(p[0], p[1], seen)
	}
	return len(seen)
}

func (ix *Index) addPathEdges(a, b *schema.Node, seen map[int]struct{}) {
	l := ix.repo.Node(ix.lcaID(a.ID, b.ID))
	for n := a; n != l; n = n.Parent() {
		seen[n.ID] = struct{}{} // edge (parent(n), n)
	}
	for n := b; n != l; n = n.Parent() {
		seen[n.ID] = struct{}{}
	}
}
