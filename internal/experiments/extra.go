package experiments

import (
	"fmt"
	"strings"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/pipeline"
)

// ScaleRow is one repository size's measurement.
type ScaleRow struct {
	Nodes           int
	Trees           int
	MappingElements int
	TreeSpace       float64
	MediumSpace     float64
	TreeTime        time.Duration
	MediumTime      time.Duration
	TreeMappings    int
	MediumMappings  int
}

// ScaleResult is the repository-size scaling experiment.
type ScaleResult struct {
	Rows []ScaleRow
}

// RunScale sweeps repository sizes over the paper's experimental range
// (Sec. 3 built repositories "with sizes from 2500 to 10200 elements") and
// contrasts medium clustering with the non-clustered baseline at each
// size. The paper's complexity argument predicts the clustered search
// space grows roughly linearly with repository size while the
// non-clustered one grows polynomially; the measured rows exhibit exactly
// that divergence.
func RunScale(s Setup, sizes []int) (*ScaleResult, error) {
	if len(sizes) == 0 {
		sizes = []int{2500, 5000, 7500, 10200}
	}
	res := &ScaleResult{}
	for _, n := range sizes {
		cfg := s.RepoConfig
		cfg.TargetNodes = n
		sz := s
		sz.RepoConfig = cfg
		e, err := NewEnv(sz)
		if err != nil {
			return nil, err
		}
		tree, err := e.Runner.Run(e.Personal, e.options(pipeline.VariantTree))
		if err != nil {
			return nil, err
		}
		med, err := e.Runner.Run(e.Personal, e.options(pipeline.VariantMedium))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ScaleRow{
			Nodes:           e.Repo.Len(),
			Trees:           e.Repo.NumTrees(),
			MappingElements: tree.MappingElements,
			TreeSpace:       tree.Counters.SearchSpace,
			MediumSpace:     med.Counters.SearchSpace,
			TreeTime:        tree.ClusterTime + tree.GenTime,
			MediumTime:      med.ClusterTime + med.GenTime,
			TreeMappings:    len(tree.Mappings),
			MediumMappings:  len(med.Mappings),
		})
	}
	return res, nil
}

// Render prints the scaling table.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	b.WriteString("Scaling — medium clustering vs non-clustered across repository sizes\n")
	b.WriteString("nodes\ttrees\tME\ttree-space\tmedium-space\t(%)\ttree-time\tmedium-time\n")
	for _, row := range r.Rows {
		pct := 0.0
		if row.TreeSpace > 0 {
			pct = 100 * row.MediumSpace / row.TreeSpace
		}
		fmt.Fprintf(&b, "%d\t%d\t%d\t%.0f\t%.0f\t%.1f%%\t%v\t%v\n",
			row.Nodes, row.Trees, row.MappingElements, row.TreeSpace, row.MediumSpace,
			pct, row.TreeTime.Round(time.Millisecond), row.MediumTime.Round(time.Millisecond))
	}
	return b.String()
}

// ConvergenceRow is one stability setting's measurement.
type ConvergenceRow struct {
	Stability  float64
	Iterations int
	Clusters   int
	Mappings   int
	Time       time.Duration
}

// ConvergenceResult is the convergence-criterion experiment.
type ConvergenceResult struct {
	Rows []ConvergenceRow
}

// RunConvergence sweeps the k-means stability fraction. The paper: "large
// time savings can be acquired by fine tuning the convergence criterion.
// Each unnecessary iteration is a waste of time ... The selection of
// termination criteria is not trivial." The rows quantify the trade-off:
// looser criteria stop earlier at little cost in discovered mappings.
func RunConvergence(e *Env, stabilities []float64) (*ConvergenceResult, error) {
	if len(stabilities) == 0 {
		stabilities = []float64{0, 0.02, 0.05, 0.2, 0.5}
	}
	res := &ConvergenceResult{}
	for _, st := range stabilities {
		cfg := cluster.DefaultConfig()
		cfg.Stability = st
		opts := e.options(pipeline.VariantMedium)
		opts.ClusterConfig = &cfg
		rep, err := e.Runner.Run(e.Personal, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ConvergenceRow{
			Stability:  st,
			Iterations: rep.Iterations,
			Clusters:   rep.Clusters,
			Mappings:   len(rep.Mappings),
			Time:       rep.ClusterTime + rep.GenTime,
		})
	}
	return res, nil
}

// OrderingResult is the cluster-ordering (time-to-first-mapping)
// experiment.
type OrderingResult struct {
	UnorderedFirstGood int
	OrderedFirstGood   int
	UsefulClusters     int
}

// RunOrdering measures the Sec. 7 "ordering the clusters" extension: with
// clusters processed in descending quality order, the first cluster
// examined should already deliver a mapping, improving the
// time-to-first-good-mapping that matters for the paper's interactive
// personal-schema-querying scenario.
func RunOrdering(e *Env) (*OrderingResult, error) {
	base := e.options(pipeline.VariantMedium)
	unordered, err := e.Runner.Run(e.Personal, base)
	if err != nil {
		return nil, err
	}
	ordered := base
	ordered.OrderClusters = true
	orderedRep, err := e.Runner.Run(e.Personal, ordered)
	if err != nil {
		return nil, err
	}
	return &OrderingResult{
		UnorderedFirstGood: unordered.FirstGoodAfter,
		OrderedFirstGood:   orderedRep.FirstGoodAfter,
		UsefulClusters:     orderedRep.UsefulClusters,
	}, nil
}

// Render prints the comparison.
func (r *OrderingResult) Render() string {
	return fmt.Sprintf(
		"Cluster ordering — first mapping after %d of %d useful clusters unordered, %d ordered by quality\n",
		r.UnorderedFirstGood, r.UsefulClusters, r.OrderedFirstGood)
}

// Render prints the convergence table.
func (r *ConvergenceResult) Render() string {
	var b strings.Builder
	b.WriteString("Convergence — k-means stability criterion sweep (medium clusters)\n")
	b.WriteString("stability\titerations\tclusters\tmappings\ttime\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.2f\t%d\t%d\t%d\t%v\n",
			row.Stability, row.Iterations, row.Clusters, row.Mappings,
			row.Time.Round(time.Millisecond))
	}
	return b.String()
}
