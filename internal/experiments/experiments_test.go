package experiments

import (
	"strings"
	"testing"

	"bellflower/internal/pipeline"
)

// testEnv builds a reduced-scale environment so the full experiment suite
// runs quickly in tests; the benchmarks use the paper-scale setup.
func testEnv(t testing.TB) *Env {
	t.Helper()
	s := DefaultSetup()
	s.RepoConfig.TargetNodes = 2500
	s.RepoConfig.Seed = 7
	e, err := NewEnv(s)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return e
}

func TestRunTable1Shape(t *testing.T) {
	e := testEnv(t)
	res, err := RunTable1(e)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	byVariant := map[pipeline.Variant]Table1Row{}
	for _, r := range res.Rows {
		byVariant[r.Variant] = r
	}
	small := byVariant[pipeline.VariantSmall]
	medium := byVariant[pipeline.VariantMedium]
	large := byVariant[pipeline.VariantLarge]
	tree := byVariant[pipeline.VariantTree]

	// Paper shape: search space ordering small <= medium <= large < tree.
	if !(small.SearchSpace <= medium.SearchSpace &&
		medium.SearchSpace <= large.SearchSpace &&
		large.SearchSpace < tree.SearchSpace) {
		t.Errorf("search space ordering violated: %v %v %v %v",
			small.SearchSpace, medium.SearchSpace, large.SearchSpace, tree.SearchSpace)
	}
	// Partial mappings follow the same ordering.
	if !(small.PartialMappings <= medium.PartialMappings &&
		medium.PartialMappings <= large.PartialMappings &&
		large.PartialMappings < tree.PartialMappings) {
		t.Errorf("partial mapping ordering violated: %d %d %d %d",
			small.PartialMappings, medium.PartialMappings,
			large.PartialMappings, tree.PartialMappings)
	}
	// Found mappings: clustering loses mappings, tree finds the most.
	if !(small.Mappings <= medium.Mappings && medium.Mappings <= large.Mappings &&
		large.Mappings <= tree.Mappings) {
		t.Errorf("mapping count ordering violated: %d %d %d %d",
			small.Mappings, medium.Mappings, large.Mappings, tree.Mappings)
	}
	// Average cluster size: small variants have smaller clusters.
	if !(small.AvgElems <= large.AvgElems && large.AvgElems <= tree.AvgElems) {
		t.Errorf("avg cluster size ordering violated: %.1f %.1f %.1f",
			small.AvgElems, large.AvgElems, tree.AvgElems)
	}
	// Tree baseline is by definition 100%.
	if tree.SpacePct < 99.99 || tree.SpacePct > 100.01 {
		t.Errorf("tree SpacePct = %v", tree.SpacePct)
	}
	if res.MappingElements == 0 {
		t.Errorf("mapping elements not reported")
	}
	out := res.Render()
	for _, want := range []string{"small", "medium", "large", "tree", "search-space"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig4Shape(t *testing.T) {
	e := testEnv(t)
	res, err := RunFig4(e)
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("strategies = %d", len(res.Strategies))
	}
	none, join, joinRemove := res.Strategies[0], res.Strategies[1], res.Strategies[2]
	// Paper shape: join reduces the cluster count, join&remove reduces it
	// further.
	if !(join.Clusters < none.Clusters) {
		t.Errorf("join (%d) should form fewer clusters than none (%d)", join.Clusters, none.Clusters)
	}
	if !(joinRemove.Clusters <= join.Clusters) {
		t.Errorf("join&remove (%d) should not exceed join (%d)", joinRemove.Clusters, join.Clusters)
	}
	// Tiny clusters: join&remove eliminates the singleton bucket.
	if joinRemove.Hist.Count(1) != 0 {
		t.Errorf("join&remove left %d singleton clusters", joinRemove.Hist.Count(1))
	}
	// no-reclustering has the most tiny clusters.
	if none.Hist.Count(1) < joinRemove.Hist.Count(1) {
		t.Errorf("tiny cluster ordering violated")
	}
	out := res.Render()
	if !strings.Contains(out, "no reclustering") || !strings.Contains(out, "join & remove") {
		t.Errorf("Render output:\n%s", out)
	}
}

func TestRunFig5Shape(t *testing.T) {
	e := testEnv(t)
	res, err := RunFig5(e)
	if err != nil {
		t.Fatalf("RunFig5: %v", err)
	}
	if len(res.Curves) != 4 || len(res.Labels) != 4 {
		t.Fatalf("curves = %d labels = %d", len(res.Curves), len(res.Labels))
	}
	byLabel := map[string][]float64{}
	for i, l := range res.Labels {
		var ps []float64
		for _, p := range res.Curves[i] {
			ps = append(ps, p.Preserved)
		}
		byLabel[l] = ps
	}
	// The tree baseline preserves everything at every threshold.
	for _, p := range byLabel["tree"] {
		if p != 1 {
			t.Errorf("tree preservation = %v, want 1", p)
		}
	}
	// All preservation values lie in [0,1].
	for l, ps := range byLabel {
		for _, p := range ps {
			if p < 0 || p > 1 {
				t.Errorf("%s preservation %v outside [0,1]", l, p)
			}
		}
	}
	// Paper shape: clustering preserves a larger share of the highly
	// ranked mappings than of all mappings — the curve at the highest
	// threshold with baseline support must not be below its start.
	for _, l := range []string{"small", "medium", "large"} {
		ps := byLabel[l]
		if ps[0] > ps[len(ps)-1]+1e-9 {
			t.Errorf("%s preservation decreases toward high delta: start %.3f end %.3f", l, ps[0], ps[len(ps)-1])
		}
	}
	// Larger clusters preserve at least as much as smaller ones at δ0.
	if byLabel["small"][0] > byLabel["large"][0]+1e-9 {
		t.Errorf("small (%.3f) preserves more than large (%.3f) at base threshold",
			byLabel["small"][0], byLabel["large"][0])
	}
	if !strings.Contains(res.Render(), "delta") {
		t.Errorf("Render output missing header")
	}
}

func TestRunFig6Shape(t *testing.T) {
	e := testEnv(t)
	res, err := RunFig6(e)
	if err != nil {
		t.Fatalf("RunFig6: %v", err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	// Paper shape: the clustering distance measure is path-based, so the
	// path-heavy objective (α=0.25) preserves the most at the base
	// threshold and the name-heavy objective (α=0.75) the least.
	p25 := res.Curves[0][0].Preserved
	p75 := res.Curves[2][0].Preserved
	if p25 < p75-1e-9 {
		t.Errorf("alpha=0.25 (%.3f) should preserve at least alpha=0.75 (%.3f)", p25, p75)
	}
	for _, c := range res.Curves {
		for _, p := range c {
			if p.Preserved < 0 || p.Preserved > 1 {
				t.Errorf("preservation %v outside [0,1]", p.Preserved)
			}
		}
	}
	if !strings.Contains(res.Render(), "a=0.25") {
		t.Errorf("Render output missing alpha label")
	}
}

func TestRunEndToEnd(t *testing.T) {
	e := testEnv(t)
	res, err := RunEndToEnd(e)
	if err != nil {
		t.Fatalf("RunEndToEnd: %v", err)
	}
	if res.TreeTotal <= 0 || res.MediumTotal <= 0 {
		t.Errorf("times not measured: %+v", res)
	}
	if !strings.Contains(res.Render(), "speedup") {
		t.Errorf("Render output: %s", res.Render())
	}
}

func TestDefaultSetupMatchesPaperScale(t *testing.T) {
	s := DefaultSetup()
	if s.RepoConfig.TargetNodes != 9759 {
		t.Errorf("TargetNodes = %d, want the paper's 9759", s.RepoConfig.TargetNodes)
	}
	if s.Threshold != 0.75 {
		t.Errorf("Threshold = %v, want 0.75", s.Threshold)
	}
	if s.Alpha != 0.5 {
		t.Errorf("Alpha = %v", s.Alpha)
	}
}

func TestNewEnvErrors(t *testing.T) {
	s := DefaultSetup()
	s.PersonalSpec = "((("
	if _, err := NewEnv(s); err == nil {
		t.Errorf("bad personal spec accepted")
	}
	s2 := DefaultSetup()
	s2.RepoConfig.TargetNodes = -1
	if _, err := NewEnv(s2); err == nil {
		t.Errorf("bad repo config accepted")
	}
}
