package experiments

import (
	"strings"
	"testing"
)

func TestRunScaleShape(t *testing.T) {
	s := DefaultSetup()
	s.RepoConfig.Seed = 7
	res, err := RunScale(s, []int{1500, 3000})
	if err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small, big := res.Rows[0], res.Rows[1]
	// More nodes -> more mapping elements and larger spaces.
	if big.MappingElements <= small.MappingElements {
		t.Errorf("mapping elements did not grow: %d -> %d",
			small.MappingElements, big.MappingElements)
	}
	if big.TreeSpace <= small.TreeSpace {
		t.Errorf("tree space did not grow: %v -> %v", small.TreeSpace, big.TreeSpace)
	}
	// Clustering always at or below the baseline space, at both sizes.
	for i, row := range res.Rows {
		if row.MediumSpace > row.TreeSpace {
			t.Errorf("row %d: medium space %v > tree space %v", i, row.MediumSpace, row.TreeSpace)
		}
		if row.MediumMappings > row.TreeMappings {
			t.Errorf("row %d: medium found more mappings than tree", i)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "tree-space") {
		t.Errorf("Render:\n%s", out)
	}
}

func TestRunConvergenceShape(t *testing.T) {
	e := testEnv(t)
	res, err := RunConvergence(e, []float64{0, 0.05, 0.5})
	if err != nil {
		t.Fatalf("RunConvergence: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Looser stability never needs more iterations than stricter.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Iterations > res.Rows[i-1].Iterations {
			t.Errorf("iterations grew with looser stability: %+v", res.Rows)
		}
	}
	// All settings still discover mappings.
	for _, row := range res.Rows {
		if row.Mappings == 0 {
			t.Errorf("stability %v found no mappings", row.Stability)
		}
		if row.Iterations < 1 {
			t.Errorf("stability %v ran %d iterations", row.Stability, row.Iterations)
		}
	}
	if !strings.Contains(res.Render(), "stability") {
		t.Errorf("Render:\n%s", res.Render())
	}
}

func TestRunOrdering(t *testing.T) {
	e := testEnv(t)
	res, err := RunOrdering(e)
	if err != nil {
		t.Fatalf("RunOrdering: %v", err)
	}
	if res.OrderedFirstGood < 1 {
		t.Fatalf("ordered run found no mapping")
	}
	// Quality ordering must reach the first mapping at least as early as
	// the default order.
	if res.UnorderedFirstGood > 0 && res.OrderedFirstGood > res.UnorderedFirstGood {
		t.Errorf("ordering made first mapping later: %d vs %d",
			res.OrderedFirstGood, res.UnorderedFirstGood)
	}
	if !strings.Contains(res.Render(), "first mapping") {
		t.Errorf("Render: %s", res.Render())
	}
}
