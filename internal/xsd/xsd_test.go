package xsd

import (
	"strings"
	"testing"
)

func TestParseInlineComplexType(t *testing.T) {
	trees, err := ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="book">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="title" type="xs:string"/>
        <xs:element name="author">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="first" type="xs:string"/>
              <xs:element name="last" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="isbn" type="xs:token"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	tr := trees[0]
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tr.String(); got != "book(isbn@,title,author(first,last))" {
		t.Errorf("tree = %q", got)
	}
	if got := tr.Find("title").Type; got != "string" {
		t.Errorf("title type = %q", got)
	}
	if got := tr.Find("isbn").Type; got != "token" {
		t.Errorf("isbn type = %q", got)
	}
}

func TestParseNamedTypeAndRef(t *testing.T) {
	trees, err := ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="AddressType">
    <xs:sequence>
      <xs:element name="street" type="xs:string"/>
      <xs:element name="city" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="person">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string"/>
        <xs:element name="address" type="AddressType"/>
        <xs:element ref="company"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="company">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d (one per top-level element)", len(trees))
	}
	person := trees[0]
	if got := person.String(); got != "person(name,address(street,city),company(name))" {
		t.Errorf("person = %q", got)
	}
	if got := trees[1].String(); got != "company(name)" {
		t.Errorf("company = %q", got)
	}
}

func TestParseChoiceAndAll(t *testing.T) {
	trees, err := ParseString(`
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="payment">
    <xsd:complexType>
      <xsd:choice>
        <xsd:element name="card" type="xsd:string"/>
        <xsd:element name="cash" type="xsd:string"/>
      </xsd:choice>
    </xsd:complexType>
  </xsd:element>
  <xsd:element name="meta">
    <xsd:complexType>
      <xsd:all>
        <xsd:element name="created" type="xsd:date"/>
      </xsd:all>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := trees[0].String(); got != "payment(card,cash)" {
		t.Errorf("choice tree = %q", got)
	}
	if got := trees[1].String(); got != "meta(created)" {
		t.Errorf("all tree = %q", got)
	}
}

func TestParseNestedGroups(t *testing.T) {
	trees, err := ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="id" type="xs:token"/>
        <xs:choice>
          <xs:element name="pickup" type="xs:string"/>
          <xs:sequence>
            <xs:element name="street" type="xs:string"/>
            <xs:element name="zip" type="xs:token"/>
          </xs:sequence>
        </xs:choice>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := trees[0].String()
	// group nesting flattens into child structure
	for _, name := range []string{"id", "pickup", "street", "zip"} {
		if !strings.Contains(got, name) {
			t.Errorf("tree %q missing %s", got, name)
		}
	}
}

func TestParseRecursiveTypeRejected(t *testing.T) {
	_, err := ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Node">
    <xs:sequence>
      <xs:element name="child" type="Node"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="root" type="Node"/>
</xs:schema>`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive type accepted: %v", err)
	}
}

func TestParseRecursiveRefRejected(t *testing.T) {
	_, err := ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a">
    <xs:complexType><xs:sequence><xs:element ref="b"/></xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="b">
    <xs:complexType><xs:sequence><xs:element ref="a"/></xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive ref accepted: %v", err)
	}
}

func TestParseSiblingRefsAllowed(t *testing.T) {
	// The same ref used twice as siblings is NOT recursion.
	trees, err := ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="pair">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="point"/>
        <xs:element ref="point"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="point">
    <xs:complexType>
      <xs:sequence><xs:element name="x" type="xs:int"/></xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`)
	if err != nil {
		t.Fatalf("sibling refs rejected: %v", err)
	}
	if got := trees[0].String(); got != "pair(point(x),point(x))" {
		t.Errorf("tree = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":        `garbage`,
		"wrong root":     `<foo/>`,
		"no elements":    `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:complexType name="T"/></xs:schema>`,
		"dangling ref":   `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="a"><xs:complexType><xs:sequence><xs:element ref="missing"/></xs:sequence></xs:complexType></xs:element></xs:schema>`,
		"dup type":       `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:complexType name="T"/><xs:complexType name="T"/><xs:element name="a" type="T"/></xs:schema>`,
		"dup element":    `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="a"/><xs:element name="a"/></xs:schema>`,
		"anonymous type": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:complexType/><xs:element name="a"/></xs:schema>`,
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

func TestParseUnknownTypeBecomesLeaf(t *testing.T) {
	trees, err := ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="ext:SomeForeignType"/>
</xs:schema>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := trees[0].Root().Type; got != "SomeForeignType" {
		t.Errorf("leaf type = %q", got)
	}
	if trees[0].Len() != 1 {
		t.Errorf("tree size = %d", trees[0].Len())
	}
}
