// Package xsd parses a practical subset of W3C XML Schema (XSD) into schema
// trees — the repository ingestion path for real schemas. The paper's
// repository was built from XML schemas and DTDs discovered on the web; this
// parser covers the constructs those files commonly use:
//
//   - top-level xs:element declarations (each becomes one tree root; one
//     schema file can therefore yield several trees, matching the paper's
//     note that "one schema can have multiple roots");
//   - inline and named xs:complexType definitions;
//   - xs:sequence, xs:choice and xs:all content models (arbitrarily
//     nested; particle semantics beyond child structure are ignored, as
//     schema matchers model structure only);
//   - xs:attribute declarations, inline or within named types;
//   - element references (ref=) to top-level elements;
//   - built-in simple types recorded as node datatypes (xs: prefix
//     stripped).
//
// Recursive type or element structures are rejected: the paper explicitly
// uses non-recursive schemas, and schema trees cannot represent cycles.
package xsd

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"bellflower/internal/schema"
)

// MaxDepth bounds expansion depth as a safety net against pathological
// (non-recursive but deeply nested) schemas.
const MaxDepth = 64

// Parse reads one XSD document and returns its trees, one per top-level
// element declaration.
func Parse(r io.Reader) ([]*schema.Tree, error) {
	var doc xsdSchema
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	if !strings.EqualFold(doc.XMLName.Local, "schema") {
		return nil, fmt.Errorf("xsd: root element is %q, want schema", doc.XMLName.Local)
	}
	p := &parser{
		types:    map[string]*xsdComplexType{},
		elements: map[string]*xsdElement{},
	}
	for i := range doc.ComplexTypes {
		ct := &doc.ComplexTypes[i]
		if ct.Name == "" {
			return nil, fmt.Errorf("xsd: top-level complexType without name")
		}
		if _, dup := p.types[ct.Name]; dup {
			return nil, fmt.Errorf("xsd: duplicate complexType %q", ct.Name)
		}
		p.types[ct.Name] = ct
	}
	for i := range doc.Elements {
		el := &doc.Elements[i]
		if el.Name == "" {
			return nil, fmt.Errorf("xsd: top-level element without name")
		}
		if _, dup := p.elements[el.Name]; dup {
			return nil, fmt.Errorf("xsd: duplicate top-level element %q", el.Name)
		}
		p.elements[el.Name] = el
	}
	var trees []*schema.Tree
	for i := range doc.Elements {
		el := &doc.Elements[i]
		b := schema.NewBuilder(el.Name)
		root := b.Root(el.Name)
		if err := p.expand(b, root, el, 0, map[string]bool{}); err != nil {
			return nil, err
		}
		t, err := b.Tree()
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("xsd: schema declares no top-level elements")
	}
	return trees, nil
}

// ParseString is Parse over a string, for tests and fixtures.
func ParseString(s string) ([]*schema.Tree, error) {
	return Parse(strings.NewReader(s))
}

type parser struct {
	types    map[string]*xsdComplexType
	elements map[string]*xsdElement
}

// expand fills node's children from the element's content model. active
// tracks named types and element refs on the current path for recursion
// detection.
func (p *parser) expand(b *schema.Builder, node *schema.Node, el *xsdElement, depth int, active map[string]bool) error {
	if depth > MaxDepth {
		return fmt.Errorf("xsd: element %q exceeds maximum depth %d", el.Name, MaxDepth)
	}
	ct := el.ComplexType
	if ct == nil && el.Type != "" {
		typ := stripPrefix(el.Type)
		if named, ok := p.types[typ]; ok {
			key := "type:" + typ
			if active[key] {
				return fmt.Errorf("xsd: recursive complexType %q", typ)
			}
			active[key] = true
			defer delete(active, key)
			ct = named
		} else {
			// A simple (built-in or unknown) type: leaf element.
			node.Type = typ
			return nil
		}
	}
	if ct == nil {
		return nil // element with neither type nor inline content: leaf
	}
	for i := range ct.Attributes {
		a := &ct.Attributes[i]
		if a.Name == "" {
			continue
		}
		b.TypedAttribute(node, a.Name, stripPrefix(a.Type))
	}
	for _, g := range ct.groups() {
		if err := p.expandGroup(b, node, g, depth+1, active); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) expandGroup(b *schema.Builder, node *schema.Node, g *xsdGroup, depth int, active map[string]bool) error {
	if depth > MaxDepth {
		return fmt.Errorf("xsd: content model exceeds maximum depth %d", MaxDepth)
	}
	for i := range g.Elements {
		el := &g.Elements[i]
		if el.Ref != "" {
			ref := stripPrefix(el.Ref)
			target, ok := p.elements[ref]
			if !ok {
				return fmt.Errorf("xsd: element ref %q has no target", el.Ref)
			}
			key := "elem:" + ref
			if active[key] {
				return fmt.Errorf("xsd: recursive element reference %q", ref)
			}
			active[key] = true
			child := b.Element(node, target.Name)
			if err := p.expand(b, child, target, depth+1, active); err != nil {
				return err
			}
			delete(active, key)
			continue
		}
		if el.Name == "" {
			return fmt.Errorf("xsd: element without name or ref under %q", node.Name)
		}
		child := b.Element(node, el.Name)
		if err := p.expand(b, child, el, depth+1, active); err != nil {
			return err
		}
	}
	for i := range g.Sequences {
		if err := p.expandGroup(b, node, &g.Sequences[i], depth+1, active); err != nil {
			return err
		}
	}
	for i := range g.Choices {
		if err := p.expandGroup(b, node, &g.Choices[i], depth+1, active); err != nil {
			return err
		}
	}
	for i := range g.Alls {
		if err := p.expandGroup(b, node, &g.Alls[i], depth+1, active); err != nil {
			return err
		}
	}
	return nil
}

// stripPrefix removes a namespace prefix ("xs:string" -> "string").
func stripPrefix(s string) string {
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// xsdSchema is the document root. Namespace handling: encoding/xml matches
// local names, so any prefix bound to the XML Schema namespace works.
type xsdSchema struct {
	XMLName      xml.Name         `xml:"schema"`
	Elements     []xsdElement     `xml:"element"`
	ComplexTypes []xsdComplexType `xml:"complexType"`
}

type xsdElement struct {
	Name        string          `xml:"name,attr"`
	Type        string          `xml:"type,attr"`
	Ref         string          `xml:"ref,attr"`
	ComplexType *xsdComplexType `xml:"complexType"`
}

type xsdComplexType struct {
	Name       string         `xml:"name,attr"`
	Sequence   *xsdGroup      `xml:"sequence"`
	Choice     *xsdGroup      `xml:"choice"`
	All        *xsdGroup      `xml:"all"`
	Attributes []xsdAttribute `xml:"attribute"`
}

// groups returns the type's non-nil content groups.
func (ct *xsdComplexType) groups() []*xsdGroup {
	var out []*xsdGroup
	for _, g := range []*xsdGroup{ct.Sequence, ct.Choice, ct.All} {
		if g != nil {
			out = append(out, g)
		}
	}
	return out
}

type xsdGroup struct {
	Elements  []xsdElement `xml:"element"`
	Sequences []xsdGroup   `xml:"sequence"`
	Choices   []xsdGroup   `xml:"choice"`
	Alls      []xsdGroup   `xml:"all"`
}

type xsdAttribute struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}
