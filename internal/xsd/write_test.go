package xsd

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"bellflower/internal/schema"
)

func TestWriteParseRoundTrip(t *testing.T) {
	orig := schema.MustParseSpec("book(isbn@:token,title:string,author(first,last))")
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	trees, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("Parse(Write()): %v\n%s", err, buf.String())
	}
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	if got := trees[0].String(); got != orig.String() {
		t.Errorf("round trip = %q, want %q", got, orig.String())
	}
	if got := trees[0].Find("title").Type; got != "string" {
		t.Errorf("title type = %q", got)
	}
	if got := trees[0].Find("isbn").Type; got != "token" {
		t.Errorf("isbn type = %q", got)
	}
}

func TestWriteMultipleTrees(t *testing.T) {
	a := schema.MustParseSpec("order(item)")
	b := schema.MustParseSpec("invoice(total)")
	var buf bytes.Buffer
	if err := Write(&buf, a, b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	trees, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d", len(trees))
	}
}

func TestWriteErrors(t *testing.T) {
	if err := Write(&bytes.Buffer{}); err == nil {
		t.Errorf("empty tree list accepted")
	}
}

func TestWriteEscapesNames(t *testing.T) {
	b := schema.NewBuilder("t")
	r := b.Root("a<b")
	b.Element(r, "c&d")
	tr := b.MustTree()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "a<b") || !strings.Contains(out, "a&lt;b") {
		t.Errorf("name not escaped:\n%s", out)
	}
}

// sig canonicalizes a tree for comparison: attributes sort before element
// children (the one reordering XSD forces), and among attributes order is
// preserved.
func sig(n *schema.Node) string {
	var attrs, elems []string
	for _, c := range n.Children() {
		if c.Kind == schema.KindAttribute {
			attrs = append(attrs, sig(c))
		} else {
			elems = append(elems, sig(c))
		}
	}
	sort.Strings(attrs)
	kind := "e"
	if n.Kind == schema.KindAttribute {
		kind = "a"
	}
	return kind + ":" + n.Name + ":" + n.Type + "(" + strings.Join(append(attrs, elems...), ",") + ")"
}

// Property: Write→Parse preserves the canonical structure of random trees.
func TestWriteParseRoundTripProperty(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	types := []string{"", "string", "integer", "date"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := schema.NewBuilder("t")
		nodes := []*schema.Node{b.Root(names[rng.Intn(len(names))])}
		n := 1 + rng.Intn(25)
		for i := 1; i < n; i++ {
			p := nodes[rng.Intn(len(nodes))]
			for p.Kind == schema.KindAttribute {
				p = nodes[rng.Intn(len(nodes))]
			}
			name := names[rng.Intn(len(names))]
			typ := types[rng.Intn(len(types))]
			var c *schema.Node
			if rng.Intn(4) == 0 {
				c = b.TypedAttribute(p, name, typ)
			} else {
				c = b.TypedElement(p, name, typ)
			}
			nodes = append(nodes, c)
		}
		tr := b.MustTree()
		// Inner nodes lose declared types in XSD (complex content); clear
		// them on the reference before comparing.
		for _, nd := range tr.Nodes() {
			if !nd.IsLeaf() {
				nd.Type = ""
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		back, err := ParseString(buf.String())
		if err != nil || len(back) != 1 {
			return false
		}
		return sig(back[0].Root()) == sig(tr.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
