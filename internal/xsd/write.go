package xsd

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"bellflower/internal/schema"
)

// Write serializes schema trees as one XML Schema document with a
// top-level xs:element per tree and inline anonymous complex types — the
// inverse of Parse for the supported subset. Exporting lets a repository
// built from DTDs, instance documents or the synthetic generator be
// consumed by standard XSD tooling.
//
// XSD cannot interleave attributes with child elements (attributes follow
// the content model), so on round trip attributes sort before element
// children; everything else is preserved.
func Write(w io.Writer, trees ...*schema.Tree) error {
	if len(trees) == 0 {
		return fmt.Errorf("xsd: no trees to write")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">`)
	for _, t := range trees {
		if t.Root() == nil {
			return fmt.Errorf("xsd: cannot write empty tree %q", t.Name)
		}
		if err := writeElement(bw, t.Root(), 1); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, `</xs:schema>`)
	return bw.Flush()
}

func writeElement(w *bufio.Writer, n *schema.Node, depth int) error {
	ind := strings.Repeat("  ", depth)
	name, err := escape(n.Name)
	if err != nil {
		return err
	}
	if n.IsLeaf() {
		if n.Type != "" {
			typ, err := escape(n.Type)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s<xs:element name=\"%s\" type=\"xs:%s\"/>\n", ind, name, typ)
		} else {
			fmt.Fprintf(w, "%s<xs:element name=\"%s\"/>\n", ind, name)
		}
		return nil
	}
	fmt.Fprintf(w, "%s<xs:element name=\"%s\">\n", ind, name)
	fmt.Fprintf(w, "%s  <xs:complexType>\n", ind)
	var attrs, elems []*schema.Node
	for _, c := range n.Children() {
		if c.Kind == schema.KindAttribute {
			attrs = append(attrs, c)
		} else {
			elems = append(elems, c)
		}
	}
	if len(elems) > 0 {
		fmt.Fprintf(w, "%s    <xs:sequence>\n", ind)
		for _, c := range elems {
			if err := writeElement(w, c, depth+3); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "%s    </xs:sequence>\n", ind)
	}
	for _, a := range attrs {
		an, err := escape(a.Name)
		if err != nil {
			return err
		}
		if a.Type != "" {
			at, err := escape(a.Type)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s    <xs:attribute name=\"%s\" type=\"xs:%s\"/>\n", ind, an, at)
		} else {
			fmt.Fprintf(w, "%s    <xs:attribute name=\"%s\"/>\n", ind, an)
		}
	}
	fmt.Fprintf(w, "%s  </xs:complexType>\n", ind)
	fmt.Fprintf(w, "%s</xs:element>\n", ind)
	return nil
}

func escape(s string) (string, error) {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return "", fmt.Errorf("xsd: %w", err)
	}
	return b.String(), nil
}
