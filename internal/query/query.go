// Package query implements the personal-schema querying step the paper's
// introduction motivates: after the user asserts a schema mapping, a query
// written against the personal schema (e.g. /book[title="Iliad"]/author) is
// rewritten into a query over the real repository schema.
//
// A small XPath subset is supported: absolute child-step paths with
// optional equality predicates, /a/b[c="v"]/d. Rewriting resolves each step
// to a personal-schema node, replaces it with its mapping image, and emits
// the repository-side path between consecutive images (upward moves render
// as "..", mapping the paper's edge-to-path semantics back into XPath).
package query

import (
	"fmt"
	"strings"

	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/schema"
)

// Step is one location step of a parsed query.
type Step struct {
	// Name is the element name of the step.
	Name string

	// Predicates are equality filters on relative child paths.
	Predicates []Predicate
}

// Predicate is an equality comparison [path="value"] relative to its step.
type Predicate struct {
	Path  []string // relative child path, e.g. ["title"]
	Value string
}

// Query is a parsed absolute path query.
type Query struct {
	Steps []Step
}

// String renders the query back to XPath syntax.
func (q *Query) String() string {
	var b strings.Builder
	for _, s := range q.Steps {
		b.WriteString("/")
		b.WriteString(s.Name)
		for _, p := range s.Predicates {
			fmt.Fprintf(&b, "[%s=%q]", strings.Join(p.Path, "/"), p.Value)
		}
	}
	return b.String()
}

// Parse parses an absolute XPath-subset query: /step[pred]/step/...
func Parse(src string) (*Query, error) {
	if !strings.HasPrefix(src, "/") {
		return nil, fmt.Errorf("query: %q is not an absolute path", src)
	}
	p := &parser{src: src}
	q := &Query{}
	for p.pos < len(p.src) {
		if p.src[p.pos] != '/' {
			return nil, fmt.Errorf("query: expected '/' at offset %d in %q", p.pos, src)
		}
		p.pos++
		step, err := p.step()
		if err != nil {
			return nil, err
		}
		q.Steps = append(q.Steps, step)
	}
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("query: empty query %q", src)
	}
	return q, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '/' || c == '[' || c == ']' || c == '=' || c == '"' || c == '\'' {
			break
		}
		p.pos++
	}
	n := strings.TrimSpace(p.src[start:p.pos])
	if n == "" {
		return "", fmt.Errorf("query: expected name at offset %d in %q", start, p.src)
	}
	return n, nil
}

func (p *parser) step() (Step, error) {
	name, err := p.name()
	if err != nil {
		return Step{}, err
	}
	st := Step{Name: name}
	for p.pos < len(p.src) && p.src[p.pos] == '[' {
		p.pos++
		pred, err := p.predicate()
		if err != nil {
			return Step{}, err
		}
		st.Predicates = append(st.Predicates, pred)
	}
	return st, nil
}

func (p *parser) predicate() (Predicate, error) {
	var path []string
	for {
		n, err := p.name()
		if err != nil {
			return Predicate{}, err
		}
		path = append(path, n)
		if p.pos < len(p.src) && p.src[p.pos] == '/' {
			p.pos++
			continue
		}
		break
	}
	if p.pos >= len(p.src) || p.src[p.pos] != '=' {
		return Predicate{}, fmt.Errorf("query: expected '=' in predicate at offset %d", p.pos)
	}
	p.pos++
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return Predicate{}, fmt.Errorf("query: expected quoted value at offset %d", p.pos)
	}
	quote := p.src[p.pos]
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], quote)
	if end < 0 {
		return Predicate{}, fmt.Errorf("query: unterminated string in %q", p.src)
	}
	val := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	if p.pos >= len(p.src) || p.src[p.pos] != ']' {
		return Predicate{}, fmt.Errorf("query: expected ']' at offset %d", p.pos)
	}
	p.pos++
	return Predicate{Path: path, Value: val}, nil
}

// Rewrite translates a personal-schema query into a repository query using
// a discovered mapping. Every step must resolve to a node of the personal
// schema along a root path; predicates resolve relative to their step.
func Rewrite(q *Query, personal *schema.Tree, m mapgen.Mapping, ix *labeling.Index) (string, error) {
	if len(m.Images) != personal.Len() {
		return "", fmt.Errorf("query: mapping does not cover the personal schema")
	}
	// Resolve steps against the personal schema.
	cur := personal.Root()
	if cur.Name != q.Steps[0].Name {
		return "", fmt.Errorf("query: first step %q does not match personal root %q",
			q.Steps[0].Name, cur.Name)
	}
	nodes := []*schema.Node{cur}
	for _, st := range q.Steps[1:] {
		next := childByName(cur, st.Name)
		if next == nil {
			return "", fmt.Errorf("query: step %q is not a child of %q in the personal schema",
				st.Name, cur.Name)
		}
		nodes = append(nodes, next)
		cur = next
	}

	var b strings.Builder
	// First step: absolute repository path of the image's root walk.
	first := m.Images[nodes[0].Pre]
	for _, name := range first.Path() {
		b.WriteString("/")
		b.WriteString(name)
	}
	if err := writePredicates(&b, q.Steps[0], nodes[0], m, ix); err != nil {
		return "", err
	}
	// Subsequent steps: relative path between consecutive images.
	for i := 1; i < len(nodes); i++ {
		from := m.Images[nodes[i-1].Pre]
		to := m.Images[nodes[i].Pre]
		if err := writeRelative(&b, from, to, ix); err != nil {
			return "", err
		}
		if err := writePredicates(&b, q.Steps[i], nodes[i], m, ix); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// childByName returns the first child with the given name.
func childByName(n *schema.Node, name string) *schema.Node {
	for _, c := range n.Children() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// writeRelative appends the XPath steps from one repository node to
// another: ".." per upward edge to the LCA, then child names downward.
func writeRelative(b *strings.Builder, from, to *schema.Node, ix *labeling.Index) error {
	if !ix.SameTree(from, to) {
		return fmt.Errorf("query: mapping images span different trees")
	}
	l := ix.LCA(from, to)
	for n := from; n != l; n = n.Parent() {
		b.WriteString("/..")
	}
	// Collect the downward segment.
	var down []*schema.Node
	for n := to; n != l; n = n.Parent() {
		down = append(down, n)
	}
	for i := len(down) - 1; i >= 0; i-- {
		b.WriteString("/")
		b.WriteString(down[i].Name)
	}
	return nil
}

func writePredicates(b *strings.Builder, st Step, personalNode *schema.Node, m mapgen.Mapping, ix *labeling.Index) error {
	for _, pred := range st.Predicates {
		// Resolve the predicate path within the personal schema.
		cur := personalNode
		for _, name := range pred.Path {
			next := childByName(cur, name)
			if next == nil {
				return fmt.Errorf("query: predicate path %q not in the personal schema under %q",
					strings.Join(pred.Path, "/"), personalNode.Name)
			}
			cur = next
		}
		var rel strings.Builder
		if err := writeRelative(&rel, m.Images[personalNode.Pre], m.Images[cur.Pre], ix); err != nil {
			return err
		}
		// Drop the leading slash of the relative path inside a predicate.
		relPath := strings.TrimPrefix(rel.String(), "/")
		fmt.Fprintf(b, "[%s=%q]", relPath, pred.Value)
	}
	return nil
}
