package query

import (
	"testing"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
)

func TestParse(t *testing.T) {
	q, err := Parse(`/book[title="Iliad"]/author`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Steps) != 2 {
		t.Fatalf("steps = %d", len(q.Steps))
	}
	if q.Steps[0].Name != "book" || q.Steps[1].Name != "author" {
		t.Errorf("steps = %+v", q.Steps)
	}
	if len(q.Steps[0].Predicates) != 1 {
		t.Fatalf("predicates = %d", len(q.Steps[0].Predicates))
	}
	p := q.Steps[0].Predicates[0]
	if len(p.Path) != 1 || p.Path[0] != "title" || p.Value != "Iliad" {
		t.Errorf("predicate = %+v", p)
	}
	if got := q.String(); got != `/book[title="Iliad"]/author` {
		t.Errorf("String = %q", got)
	}
}

func TestParseVariants(t *testing.T) {
	good := []string{
		"/a",
		"/a/b/c",
		`/a[b="1"]`,
		`/a[b/c="deep"]/d`,
		`/a[b='single']`,
		`/a[b="x"][c="y"]`,
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		"", "a/b", "/", "/a[", "/a[b]", `/a[b=]`, `/a[b="x"`, `/a[="x"]`, "//a",
		`/a[b="x]`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): error expected", src)
		}
	}
}

// fixture reproduces the paper's Fig. 1: personal book(title,author) mapped
// into lib(address, book(authorName, data(title), shelf)).
func fixture(t *testing.T) (*schema.Tree, mapgen.Mapping, *labeling.Index) {
	t.Helper()
	personal := schema.MustParseSpec("book(title,author)")
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("lib(address,book(authorName,data(title),shelf))"))
	ix := labeling.NewIndex(repo)
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.4})
	ev := objective.NewEvaluator(objective.DefaultParams(), ix, personal)
	g := mapgen.New(mapgen.Config{Threshold: 0.5}, ix, ev, cands)
	ms, _ := g.Generate(cluster.TreeClusters(ix, cands).Clusters)
	if len(ms) == 0 {
		t.Fatalf("fixture produced no mappings")
	}
	// pick the mapping matching Fig. 1 (book->book, title->title under
	// data, author->authorName)
	for _, m := range ms {
		if m.Images[0].Name == "book" && m.Images[1].Name == "title" && m.Images[2].Name == "authorName" {
			return personal, m, ix
		}
	}
	t.Fatalf("Fig. 1 mapping not found among %d mappings", len(ms))
	return nil, mapgen.Mapping{}, nil
}

func TestRewritePaperExample(t *testing.T) {
	personal, m, ix := fixture(t)
	q, err := Parse(`/book[title="Iliad"]/author`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got, err := Rewrite(q, personal, m, ix)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// book -> /lib/book; title predicate -> data/title; author -> authorName
	want := `/lib/book[data/title="Iliad"]/authorName`
	if got != want {
		t.Errorf("Rewrite = %q, want %q", got, want)
	}
}

func TestRewriteNoPredicate(t *testing.T) {
	personal, m, ix := fixture(t)
	q := mustParse(t, "/book/title")
	got, err := Rewrite(q, personal, m, ix)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if got != "/lib/book/data/title" {
		t.Errorf("Rewrite = %q", got)
	}
}

func TestRewriteErrors(t *testing.T) {
	personal, m, ix := fixture(t)
	cases := []string{
		"/wrongroot/title",
		"/book/nope",
		`/book[zzz="1"]`,
	}
	for _, src := range cases {
		q := mustParse(t, src)
		if _, err := Rewrite(q, personal, m, ix); err == nil {
			t.Errorf("Rewrite(%q): error expected", src)
		}
	}
	// mapping length mismatch
	q := mustParse(t, "/book")
	short := m
	short.Images = short.Images[:1]
	if _, err := Rewrite(q, personal, short, ix); err == nil {
		t.Errorf("short mapping accepted")
	}
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestRewriteUpwardPath(t *testing.T) {
	// Force a mapping where a personal child maps to a sibling branch:
	// personal a(b): a->x, b->y where y is NOT under x.
	personal := schema.MustParseSpec("a(b)")
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("r(x,y)"))
	ix := labeling.NewIndex(repo)
	tr := repo.Tree(0)
	m := mapgen.Mapping{
		Images: []*schema.Node{tr.Find("x"), tr.Find("y")},
		Sims:   []float64{1, 1},
	}
	q := mustParse(t, "/a/b")
	got, err := Rewrite(q, personal, m, ix)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if got != "/r/x/../y" {
		t.Errorf("Rewrite = %q, want /r/x/../y", got)
	}
}
