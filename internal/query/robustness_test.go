package query

import (
	"math/rand"
	"strings"
	"testing"
)

// Fuzz-style robustness: Parse must never panic, and parse→String→parse
// must be stable for accepted queries.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := `/ab[]="',.@*`
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		for j := 0; j < rng.Intn(30); j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			q, err := Parse(src)
			if err != nil {
				return
			}
			// Accepted queries must round-trip through String.
			again, err := Parse(q.String())
			if err != nil {
				t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", src, q.String(), err)
			}
			if again.String() != q.String() {
				t.Fatalf("String not stable: %q -> %q", q.String(), again.String())
			}
		}()
	}
}
