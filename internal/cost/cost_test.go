package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func paperProblem() Problem {
	// Rough shape of the paper's reference experiment: three candidate
	// sets totalling ~4500 elements, 235 clusters, 4 iterations, B&B
	// tests ~3.2% of the space.
	return Problem{
		CandidatesPerNode: []float64{1500, 1800, 1200},
		Clusters:          235,
		Iterations:        4,
		BnBFraction:       0.032,
	}
}

func TestProblemValidate(t *testing.T) {
	if err := paperProblem().Validate(); err != nil {
		t.Fatalf("paper problem invalid: %v", err)
	}
	bad := []Problem{
		{},
		{CandidatesPerNode: []float64{0}, Clusters: 1, BnBFraction: 0.5},
		{CandidatesPerNode: []float64{10}, Clusters: 0, BnBFraction: 0.5},
		{CandidatesPerNode: []float64{10}, Clusters: 1, BnBFraction: 0},
		{CandidatesPerNode: []float64{10}, Clusters: 1, BnBFraction: 2},
		{CandidatesPerNode: []float64{10}, Clusters: 1, Iterations: -1, BnBFraction: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("problem %d should be invalid", i)
		}
	}
}

func TestSpaceFormulas(t *testing.T) {
	p := Problem{CandidatesPerNode: []float64{10, 20, 30}, Clusters: 5, Iterations: 4, BnBFraction: 0.1}
	if got := p.NonClusteredSpace(); got != 6000 {
		t.Errorf("NonClusteredSpace = %v", got)
	}
	// c * (10/5)(20/5)(30/5) = 5*2*4*6 = 240
	if got := p.ClusteredSpace(); got != 240 {
		t.Errorf("ClusteredSpace = %v", got)
	}
	// reduction factor = c^(n-1) = 25
	if got := p.SpaceReduction(); got != 25 {
		t.Errorf("SpaceReduction = %v", got)
	}
	if got := p.NonClusteredSpace() / p.ClusteredSpace(); math.Abs(got-25) > 1e-9 {
		t.Errorf("actual reduction %v != c^(n-1)", got)
	}
	if got := p.TotalCandidates(); got != 60 {
		t.Errorf("TotalCandidates = %v", got)
	}
	if got := p.ClusteringOps(); got != 5*4*60 {
		t.Errorf("ClusteringOps = %v", got)
	}
}

func TestCalibrateAndPredict(t *testing.T) {
	// Calibrate against the paper's own numbers: clustering 12.0s for
	// c·i·|ME| ops; generation 23.8s for 56 965 partial mappings.
	p := paperProblem()
	m, err := Calibrate(12.0, p.ClusteringOps(), 23.8, 56965)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	est, err := m.Predict(p)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	// The model must reproduce the clustering time it was calibrated on.
	if math.Abs(est.ClusteringSeconds-12.0) > 1e-9 {
		t.Errorf("clustering seconds = %v, want 12.0", est.ClusteringSeconds)
	}
	if est.Total() <= est.ClusteringSeconds {
		t.Errorf("generation time missing: %+v", est)
	}
	base, err := m.PredictNonClustered(p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Total() <= est.Total() {
		t.Errorf("at paper scale clustering should win: clustered %v vs base %v",
			est.Total(), base.Total())
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(1, 0, 1, 10); err == nil {
		t.Errorf("zero ops accepted")
	}
	if _, err := Calibrate(-1, 10, 1, 10); err == nil {
		t.Errorf("negative time accepted")
	}
}

func TestOptimalClusters(t *testing.T) {
	p := paperProblem()
	m, _ := Calibrate(12.0, p.ClusteringOps(), 23.8, 56965)
	bestC, best, err := m.OptimalClusters(p, 2000)
	if err != nil {
		t.Fatalf("OptimalClusters: %v", err)
	}
	if bestC <= 1 {
		t.Errorf("optimum at c=%v; clustering should pay off", bestC)
	}
	// The optimum must be at least as good as the fitted configuration.
	fitted, _ := m.Predict(p)
	if best.Total() > fitted.Total()+1e-9 {
		t.Errorf("optimum %v worse than fitted %v", best.Total(), fitted.Total())
	}
}

func TestBreakEven(t *testing.T) {
	p := paperProblem()
	m, _ := Calibrate(12.0, p.ClusteringOps(), 23.8, 56965)
	c, err := m.BreakEvenClusters(p, 1000)
	if err != nil {
		t.Fatalf("BreakEvenClusters: %v", err)
	}
	if c < 1 {
		t.Errorf("break-even not found; clustering should pay off at paper scale")
	}

	// A tiny problem where clustering cannot pay off: huge per-distance
	// cost, trivial search space.
	tiny := Problem{CandidatesPerNode: []float64{2, 2}, Clusters: 2, Iterations: 10, BnBFraction: 1}
	expensive := Model{SecondsPerDistance: 1, SecondsPerPartial: 1e-9}
	c2, err := expensive.BreakEvenClusters(tiny, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 0 {
		t.Errorf("break-even %d found where clustering cannot pay off", c2)
	}
}

// Property: clustered space decreases monotonically in c and the reduction
// factor formula matches the ratio exactly.
func TestClusteredSpaceMonotoneProperty(t *testing.T) {
	f := func(m1, m2, m3 uint8) bool {
		p := Problem{
			CandidatesPerNode: []float64{float64(m1%50 + 10), float64(m2%50 + 10), float64(m3%50 + 10)},
			Iterations:        4,
			BnBFraction:       0.1,
		}
		prev := math.Inf(1)
		for c := 1.0; c <= 64; c *= 2 {
			p.Clusters = c
			s := p.ClusteredSpace()
			if s > prev+1e-9 {
				return false
			}
			prev = s
			if math.Abs(p.NonClusteredSpace()/s-p.SpaceReduction()) > 1e-6*p.SpaceReduction() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
