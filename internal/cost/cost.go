// Package cost is an analytic cost model for clustered schema matching —
// the paper's closing future-work item ("A creation of an elaborate cost
// model for the whole clustered schema matching technique is future
// research").
//
// It turns the paper's complexity expressions into a calibrated predictor:
//
//	non-clustered search space  = Π_n |MEn|                  (Sec. 2.2)
//	clustered search space      ≈ c · Π_n (|MEn|/c)          (Sec. 2.3)
//	space reduction             = c^(|Ns|−1)
//	clustering cost             = c · i · |ME|               (Sec. 4)
//	generation cost             ≈ bnbFraction · search space (Tab. 1b)
//
// Calibrating the two unit costs (one distance computation, one partial
// mapping test) against a measured run lets the model answer the planning
// question the paper leaves open: for a given problem size, how many
// clusters make clustering worthwhile, and where is the break-even?
package cost

import (
	"fmt"
	"math"
)

// Problem describes one matching problem's size parameters.
type Problem struct {
	// CandidatesPerNode is |MEn| for each personal-schema node.
	CandidatesPerNode []float64

	// Clusters is c, the number of clusters formed.
	Clusters float64

	// Iterations is i, the number of k-means iterations.
	Iterations float64

	// BnBFraction is the fraction of the search space the Branch & Bound
	// generator actually tests (Tab. 1b: 386 817 / 11 962 741 ≈ 0.032 for
	// the paper's tree baseline). Use Calibrate to fit it from a run.
	BnBFraction float64
}

// Validate checks the parameters.
func (p Problem) Validate() error {
	if len(p.CandidatesPerNode) == 0 {
		return fmt.Errorf("cost: no candidate counts")
	}
	for _, m := range p.CandidatesPerNode {
		if m <= 0 {
			return fmt.Errorf("cost: non-positive candidate count %v", m)
		}
	}
	if p.Clusters < 1 {
		return fmt.Errorf("cost: clusters %v < 1", p.Clusters)
	}
	if p.Iterations < 0 {
		return fmt.Errorf("cost: negative iterations")
	}
	if p.BnBFraction <= 0 || p.BnBFraction > 1 {
		return fmt.Errorf("cost: BnBFraction %v outside (0,1]", p.BnBFraction)
	}
	return nil
}

// TotalCandidates returns |ME| = Σ |MEn|.
func (p Problem) TotalCandidates() float64 {
	total := 0.0
	for _, m := range p.CandidatesPerNode {
		total += m
	}
	return total
}

// NonClusteredSpace returns Π |MEn|.
func (p Problem) NonClusteredSpace() float64 {
	space := 1.0
	for _, m := range p.CandidatesPerNode {
		space *= m
	}
	return space
}

// ClusteredSpace returns c · Π (|MEn|/c): the paper's idealized model in
// which clustering splits every candidate set evenly over the clusters.
func (p Problem) ClusteredSpace() float64 {
	space := p.Clusters
	for _, m := range p.CandidatesPerNode {
		space *= m / p.Clusters
	}
	return space
}

// SpaceReduction returns the paper's c^(|Ns|−1) reduction factor.
func (p Problem) SpaceReduction() float64 {
	return math.Pow(p.Clusters, float64(len(p.CandidatesPerNode)-1))
}

// ClusteringOps returns c · i · |ME|, the number of distance computations
// of the k-means loop.
func (p Problem) ClusteringOps() float64 {
	return p.Clusters * p.Iterations * p.TotalCandidates()
}

// Estimate is a predicted cost breakdown in seconds.
type Estimate struct {
	ClusteringSeconds float64
	GenerationSeconds float64
}

// Total returns the end-to-end prediction.
func (e Estimate) Total() float64 { return e.ClusteringSeconds + e.GenerationSeconds }

// Model holds the calibrated unit costs.
type Model struct {
	// SecondsPerDistance is the cost of one element–centroid distance
	// computation in the clustering loop.
	SecondsPerDistance float64

	// SecondsPerPartial is the cost of one partial mapping generated and
	// tested by the B&B generator.
	SecondsPerPartial float64
}

// Calibrate fits the unit costs from one measured run: the clustering time
// of a run that performed ops distance computations and the generation
// time of a run that tested partials partial mappings.
func Calibrate(clusterSeconds, clusterOps, genSeconds, partials float64) (Model, error) {
	if clusterOps <= 0 || partials <= 0 {
		return Model{}, fmt.Errorf("cost: cannot calibrate from zero work")
	}
	if clusterSeconds < 0 || genSeconds < 0 {
		return Model{}, fmt.Errorf("cost: negative measured time")
	}
	return Model{
		SecondsPerDistance: clusterSeconds / clusterOps,
		SecondsPerPartial:  genSeconds / partials,
	}, nil
}

// Predict estimates the clustered matching cost of a problem.
func (m Model) Predict(p Problem) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	return Estimate{
		ClusteringSeconds: m.SecondsPerDistance * p.ClusteringOps(),
		GenerationSeconds: m.SecondsPerPartial * p.BnBFraction * p.ClusteredSpace(),
	}, nil
}

// PredictNonClustered estimates the non-clustered baseline cost.
func (m Model) PredictNonClustered(p Problem) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	return Estimate{
		GenerationSeconds: m.SecondsPerPartial * p.BnBFraction * p.NonClusteredSpace(),
	}, nil
}

// OptimalClusters searches c ∈ [1, maxClusters] for the cluster count
// minimizing the predicted total cost of the problem. It captures the
// trade-off the paper describes: more clusters shrink the generator's
// search space by c^(n−1) but grow the clustering overhead linearly in c.
func (m Model) OptimalClusters(p Problem, maxClusters int) (bestC float64, best Estimate, err error) {
	if maxClusters < 1 {
		return 0, Estimate{}, fmt.Errorf("cost: maxClusters %d < 1", maxClusters)
	}
	for c := 1; c <= maxClusters; c++ {
		q := p
		q.Clusters = float64(c)
		est, err := m.Predict(q)
		if err != nil {
			return 0, Estimate{}, err
		}
		if c == 1 || est.Total() < best.Total() {
			bestC, best = float64(c), est
		}
	}
	return bestC, best, nil
}

// BreakEvenClusters returns the smallest c at which the predicted
// clustered total beats the non-clustered baseline, or 0 if clustering
// never pays off within maxClusters.
func (m Model) BreakEvenClusters(p Problem, maxClusters int) (int, error) {
	base, err := m.PredictNonClustered(p)
	if err != nil {
		return 0, err
	}
	for c := 1; c <= maxClusters; c++ {
		q := p
		q.Clusters = float64(c)
		est, err := m.Predict(q)
		if err != nil {
			return 0, err
		}
		if est.Total() < base.Total() {
			return c, nil
		}
	}
	return 0, nil
}
