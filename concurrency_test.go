package bellflower_test

// Concurrency tests: the serve subsystem depends on one Matcher (one
// pipeline.Runner and its shared labelling index) being safe under
// concurrent Match calls. Run with -race.

import (
	"context"
	"sync"
	"testing"
	"time"

	"bellflower"
)

func concurrencyRepo(t testing.TB) *bellflower.Repository {
	t.Helper()
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = 800
	cfg.Seed = 42
	repo, err := bellflower.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// TestMatcherConcurrentUse hammers one Matcher from many goroutines with a
// mix of personal schemas and options, and checks that every goroutine
// gets exactly the result a fresh sequential run produces — both a data
// race probe (under -race) and a determinism check.
func TestMatcherConcurrentUse(t *testing.T) {
	repo := concurrencyRepo(t)
	m := bellflower.NewMatcher(repo)

	personals := []string{
		"book(title,author)",
		"customer(name,email,address)",
		"order(id,item(name,price))",
	}
	variants := []bellflower.Variant{bellflower.VariantMedium, bellflower.VariantTree}

	type job struct {
		spec    string
		variant bellflower.Variant
	}
	var jobs []job
	for _, p := range personals {
		for _, v := range variants {
			jobs = append(jobs, job{p, v})
		}
	}
	makeOpts := func(v bellflower.Variant) bellflower.Options {
		opts := bellflower.DefaultOptions()
		opts.Threshold = 0.5
		opts.Variant = v
		return opts
	}

	// Sequential reference results.
	want := make(map[job][]float64)
	for _, j := range jobs {
		rep, err := m.Match(bellflower.MustParseSchema(j.spec), makeOpts(j.variant))
		if err != nil {
			t.Fatal(err)
		}
		want[j] = rep.Deltas()
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				j := jobs[(g*iters+i)%len(jobs)]
				opts := makeOpts(j.variant)
				if (g+i)%2 == 1 {
					opts.Parallelism = 2 // mix in the internal fan-out too
				}
				rep, err := m.Match(bellflower.MustParseSchema(j.spec), opts)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got := rep.Deltas()
				ref := want[j]
				if len(got) != len(ref) {
					t.Errorf("goroutine %d job %+v: %d mappings, want %d", g, j, len(got), len(ref))
					return
				}
				for k := range got {
					if got[k] != ref[k] {
						t.Errorf("goroutine %d job %+v: mapping %d Δ=%v, want %v", g, j, k, got[k], ref[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMatchContextDeadline exercises the facade's context plumbing: an
// expired context aborts the run.
func TestMatchContextDeadline(t *testing.T) {
	m := bellflower.NewMatcher(concurrencyRepo(t))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := m.MatchContext(ctx, bellflower.MustParseSchema("book(title,author)"), bellflower.DefaultOptions())
	if err == nil {
		t.Fatal("expired context produced a report")
	}
}

// TestServiceFacade exercises the re-exported service API end to end:
// NewService, Match, MatchBatch, Stats, Close.
func TestServiceFacade(t *testing.T) {
	svc := bellflower.NewService(concurrencyRepo(t), bellflower.ServiceConfig{Workers: 2})
	defer svc.Close()

	opts := bellflower.DefaultOptions()
	opts.Threshold = 0.5
	personal := bellflower.MustParseSchema("book(title,author)")

	if _, err := svc.Match(context.Background(), personal, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Match(context.Background(), personal, opts); err != nil {
		t.Fatal(err)
	}
	results := svc.MatchBatch(context.Background(), []bellflower.MatchRequest{
		{Personal: personal, Opts: opts},
		{Personal: bellflower.MustParseSchema("customer(name,email)"), Opts: opts},
	})
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("batch entry %d: %v", i, res.Err)
		}
	}
	st := svc.Stats()
	if st.Requests != 4 {
		t.Errorf("requests = %d, want 4", st.Requests)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits after a repeated identical request")
	}

	m := bellflower.NewMatcher(concurrencyRepo(t))
	shared := m.Serve(bellflower.ServiceConfig{Workers: 1})
	if _, err := shared.Match(context.Background(), personal, opts); err != nil {
		t.Errorf("Matcher.Serve service: %v", err)
	}
	shared.Close()
}
