package bellflower

import (
	"strings"
	"testing"
)

func paperRepo(t *testing.T) *Repository {
	t.Helper()
	repo := NewRepository()
	tree, err := ParseSchema("lib(address,book(authorName,data(title),shelf))")
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	repo.MustAdd(tree)
	return repo
}

func TestMatchPaperFigure1(t *testing.T) {
	m := NewMatcher(paperRepo(t))
	personal := MustParseSchema("book(title,author)")
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.5
	opts.MinSim = 0.4
	rep, err := m.Match(personal, opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(rep.Mappings) == 0 {
		t.Fatalf("no mappings")
	}
	best := rep.Mappings[0]
	if best.Images[0].Name != "book" {
		t.Errorf("best book image = %v", best.Images[0])
	}
	out := FormatMapping(personal, best)
	if !strings.Contains(out, "book→/lib/book") {
		t.Errorf("FormatMapping = %q", out)
	}
}

func TestEndToEndQueryRewrite(t *testing.T) {
	m := NewMatcher(paperRepo(t))
	personal := MustParseSchema("book(title,author)")
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.5
	opts.MinSim = 0.4
	rep, err := m.Match(personal, opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	// Find the Fig. 1 mapping (title via data).
	var target *Mapping
	for i := range rep.Mappings {
		mp := &rep.Mappings[i]
		if mp.Images[1].PathString() == "/lib/book/data/title" &&
			mp.Images[2].Name == "authorName" {
			target = mp
			break
		}
	}
	if target == nil {
		t.Fatalf("Fig. 1 mapping not found")
	}
	got, err := m.RewriteQuery(`/book[title="Iliad"]/author`, personal, *target)
	if err != nil {
		t.Fatalf("RewriteQuery: %v", err)
	}
	if got != `/lib/book[data/title="Iliad"]/authorName` {
		t.Errorf("RewriteQuery = %q", got)
	}
}

func TestParseXSDAndDTD(t *testing.T) {
	xsdTrees, err := ParseXSD(strings.NewReader(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="contact">
    <xs:complexType><xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="email" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`))
	if err != nil {
		t.Fatalf("ParseXSD: %v", err)
	}
	if xsdTrees[0].String() != "contact(name,email)" {
		t.Errorf("xsd tree = %q", xsdTrees[0])
	}

	dtdTrees, err := ParseDTD(strings.NewReader(`
<!ELEMENT contact (name, email)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>`))
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	if dtdTrees[0].String() != "contact(name,email)" {
		t.Errorf("dtd tree = %q", dtdTrees[0])
	}
}

func TestSyntheticAndVariants(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 1500
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	m := NewMatcher(repo)
	personal := MustParseSchema("address(name,email)")
	opts := DefaultOptions()
	opts.MinSim = 0.3
	var treeSpace, mediumSpace float64
	for _, v := range []Variant{VariantMedium, VariantTree} {
		opts.Variant = v
		rep, err := m.Match(personal, opts)
		if err != nil {
			t.Fatalf("Match(%v): %v", v, err)
		}
		if v == VariantTree {
			treeSpace = rep.Counters.SearchSpace
		} else {
			mediumSpace = rep.Counters.SearchSpace
		}
	}
	if mediumSpace >= treeSpace {
		t.Errorf("clustering did not reduce the search space: %v >= %v", mediumSpace, treeSpace)
	}
}

func TestCombinedMatcherFacade(t *testing.T) {
	cm, err := NewCombinedMatcher(
		[]ElementMatcher{NewNameMatcher(true), NewSynonymMatcher([]string{"writer", "scribe"}), NewTypeMatcher()},
		[]float64{3, 1, 1},
	)
	if err != nil {
		t.Fatalf("NewCombinedMatcher: %v", err)
	}
	repo := paperRepo(t)
	m := NewMatcher(repo)
	personal := MustParseSchema("book(title,author)")
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.4
	opts.MinSim = 0.3
	opts.Matcher = cm
	rep, err := m.Match(personal, opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(rep.Mappings) == 0 {
		t.Errorf("combined matcher found nothing")
	}
}

func TestCombinedMatcherErrors(t *testing.T) {
	if _, err := NewCombinedMatcher(nil, nil); err == nil {
		t.Errorf("empty combined accepted")
	}
	if _, err := NewCombinedMatcher([]ElementMatcher{NewTypeMatcher()}, []float64{-1}); err == nil {
		t.Errorf("negative weight accepted")
	}
	if _, err := NewCombinedMatcher([]ElementMatcher{NewTypeMatcher()}, []float64{1, 2}); err == nil {
		t.Errorf("length mismatch accepted")
	}
}

func TestFormatSchema(t *testing.T) {
	out := FormatSchema(MustParseSchema("a(b,c@)"))
	if !strings.Contains(out, "a\n") || !strings.Contains(out, "@c") {
		t.Errorf("FormatSchema = %q", out)
	}
}

func TestIncludePartialsFacade(t *testing.T) {
	repo := NewRepository()
	repo.MustAdd(MustParseSchema("contact(name,address)"))
	m := NewMatcher(repo)
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.2
	opts.MinSim = 0.4
	opts.IncludePartials = true
	rep, err := m.Match(MustParseSchema("person(name,address,zzzwwy)"), opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(rep.Partials) == 0 {
		t.Errorf("no partial mappings")
	}
}
